/**
 * @file
 * Work-stealing thread pool for embarrassingly parallel sweeps.
 *
 * Each worker owns a deque: it pops its own work from the front and,
 * when empty, steals from the back of a sibling's deque — the classic
 * split that keeps a worker's hot tasks local while idle workers drain
 * the longest-queued work. submit() distributes tasks round-robin so
 * stealing only happens when the initial split turns out uneven
 * (sweep points routinely differ in cost by 10-100x: a 16-disk
 * heavy-load simulation vs a single idle drive).
 *
 * Tasks must not throw — callers wanting exception propagation capture
 * a std::exception_ptr inside the task (see SweepRunner).
 */

#ifndef IDP_EXEC_THREAD_POOL_HH
#define IDP_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace idp {
namespace exec {

class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Safe to call from any thread, even workers. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned hardwareThreads();

  private:
    struct WorkQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool tryGetTask(std::size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex stateMutex_;
    std::condition_variable workCv_; ///< workers sleep here when dry
    std::condition_variable idleCv_; ///< wait() sleeps here
    /** Tasks pushed but not yet finished running. */
    std::int64_t unfinished_ = 0;
    /** Tasks sitting in some queue (sleep predicate for workers). */
    std::int64_t queued_ = 0;
    std::size_t nextQueue_ = 0;
    bool stopping_ = false;
};

} // namespace exec
} // namespace idp

#endif // IDP_EXEC_THREAD_POOL_HH
