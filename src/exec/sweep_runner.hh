/**
 * @file
 * Deterministic parallel sweep execution.
 *
 * A sweep is N independent points (parameter combinations), each
 * producing one result. SweepRunner fans the points across a
 * work-stealing ThreadPool and collects results into index-ordered
 * slots, so the output vector — and anything printed or exported from
 * it — is byte-identical regardless of thread count or completion
 * order.
 *
 * Determinism contract: point i receives a SweepPoint whose RNG
 * stream seed is sim::streamSeed(baseSeed, i) — a pure function of
 * (base seed, point index). A point function that takes all its
 * randomness from SweepPoint::rng() (or seeds generators from
 * SweepPoint::seed) therefore computes bit-identical results at any
 * thread count, including the serial IDP_THREADS=1 path, which runs
 * the points in index order on the calling thread exactly as the
 * pre-engine benches did.
 *
 * Exception contract: if point functions throw, the sweep finishes
 * the remaining points, then rethrows the exception of the
 * lowest-indexed failing point — again independent of thread count.
 */

#ifndef IDP_EXEC_SWEEP_RUNNER_HH
#define IDP_EXEC_SWEEP_RUNNER_HH

#include <algorithm>
#include <cstdint>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hh"
#include "sim/rng.hh"

namespace idp {
namespace exec {

/** Default base seed for sweep-point stream derivation. */
constexpr std::uint64_t kDefaultSweepSeed = 0x1D9A5EEDULL;

/**
 * Worker count from the environment: IDP_THREADS if set to a positive
 * integer (1 = serial), otherwise hardware_concurrency(). A malformed
 * value warns once and falls back to the default.
 */
unsigned configuredThreads();

/** Handed to each point function: its index and private RNG stream. */
struct SweepPoint
{
    std::size_t index = 0;
    std::uint64_t seed = 0; ///< sim::streamSeed(baseSeed, index)

    /** Fresh generator on this point's private stream. */
    sim::Rng rng() const { return sim::Rng(seed); }
};

class SweepRunner
{
  public:
    /**
     * @param threads worker count; 0 = configuredThreads().
     * @param base_seed root of the per-point stream family.
     */
    explicit SweepRunner(unsigned threads = 0,
                         std::uint64_t base_seed = kDefaultSweepSeed)
        : threads_(threads ? threads : configuredThreads()),
          baseSeed_(base_seed)
    {
    }

    unsigned threads() const { return threads_; }
    std::uint64_t baseSeed() const { return baseSeed_; }

    /**
     * Evaluate @p fn over points 0..@p points-1; result i in slot i.
     */
    template <typename Fn>
    auto run(std::size_t points, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const SweepPoint &>>
    {
        using R = std::invoke_result_t<Fn &, const SweepPoint &>;
        static_assert(!std::is_void_v<R>,
                      "sweep point functions must return a value");
        std::vector<R> results;
        if (points == 0)
            return results;

        if (threads_ <= 1 || points == 1) {
            // Serial path: index order on this thread, exceptions
            // propagate directly from the failing point.
            results.reserve(points);
            for (std::size_t i = 0; i < points; ++i)
                results.push_back(fn(makePoint(i)));
            return results;
        }

        std::vector<std::optional<R>> slots(points);
        std::vector<std::exception_ptr> errors(points);
        {
            const unsigned workers = static_cast<unsigned>(
                std::min<std::size_t>(threads_, points));
            ThreadPool pool(workers);
            for (std::size_t i = 0; i < points; ++i) {
                pool.submit([this, &slots, &errors, &fn, i] {
                    try {
                        slots[i].emplace(fn(makePoint(i)));
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                });
            }
            pool.wait();
        }
        for (std::size_t i = 0; i < points; ++i)
            if (errors[i])
                std::rethrow_exception(errors[i]);

        results.reserve(points);
        for (auto &slot : slots)
            results.push_back(std::move(*slot));
        return results;
    }

    /**
     * Map @p fn over @p items; result i corresponds to items[i].
     * @p fn is called as fn(item, point).
     */
    template <typename T, typename Fn>
    auto map(const std::vector<T> &items, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &,
                                            const SweepPoint &>>
    {
        return run(items.size(), [&](const SweepPoint &point) {
            return fn(items[point.index], point);
        });
    }

  private:
    SweepPoint makePoint(std::size_t i) const
    {
        return SweepPoint{
            i, sim::streamSeed(baseSeed_,
                               static_cast<std::uint64_t>(i))};
    }

    unsigned threads_;
    std::uint64_t baseSeed_;
};

} // namespace exec
} // namespace idp

#endif // IDP_EXEC_SWEEP_RUNNER_HH
