/**
 * @file
 * Sweep-engine bridge for the common bench shape: run many
 * (trace, system) simulation points and collect core::RunResult rows.
 *
 * Every bench that used to loop
 *
 *     for (cfg : configs) rows.push_back(core::runTrace(trace, cfg));
 *
 * calls runSystems()/runSimPoints() instead: same rows, same order,
 * fanned across IDP_THREADS cores. Each simulation point is fully
 * deterministic (seeded workloads, per-drive fault RNG in the spec),
 * so the parallel rows are bit-identical to the serial ones.
 */

#ifndef IDP_EXEC_SIM_SWEEP_HH
#define IDP_EXEC_SIM_SWEEP_HH

#include <vector>

#include "core/experiment.hh"

namespace idp {
namespace exec {

/** One simulation point: a trace replayed against a system. */
struct SimPoint
{
    /** Borrowed; must outlive the sweep. Traces are shared read-only
     *  across threads, which is safe — replay never mutates them. */
    const workload::Trace *trace = nullptr;
    core::SystemConfig config;
};

/**
 * Simulate every point; result i in slot i.
 * @p threads 0 = IDP_THREADS / hardware_concurrency().
 */
std::vector<core::RunResult>
runSimPoints(const std::vector<SimPoint> &points, unsigned threads = 0);

/** Common case: each of @p systems against one shared @p trace. */
std::vector<core::RunResult>
runSystems(const workload::Trace &trace,
           const std::vector<core::SystemConfig> &systems,
           unsigned threads = 0);

} // namespace exec
} // namespace idp

#endif // IDP_EXEC_SIM_SWEEP_HH
