#include "exec/thread_pool.hh"

#include <algorithm>

namespace idp {
namespace exec {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::max(1u, threads);
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t victim;
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        ++unfinished_;
        victim = nextQueue_++ % queues_.size();
    }
    {
        std::lock_guard<std::mutex> qlock(queues_[victim]->mutex);
        queues_[victim]->tasks.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        ++queued_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    idleCv_.wait(lock, [this] { return unfinished_ == 0; });
}

bool
ThreadPool::tryGetTask(std::size_t self, std::function<void()> &out)
{
    // Own queue first, front (most recently assigned locality) ...
    {
        WorkQueue &mine = *queues_[self];
        std::lock_guard<std::mutex> qlock(mine.mutex);
        if (!mine.tasks.empty()) {
            out = std::move(mine.tasks.front());
            mine.tasks.pop_front();
            return true;
        }
    }
    // ... then steal from the back of the other workers' queues.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        WorkQueue &theirs = *queues_[(self + i) % queues_.size()];
        std::lock_guard<std::mutex> qlock(theirs.mutex);
        if (!theirs.tasks.empty()) {
            out = std::move(theirs.tasks.back());
            theirs.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::function<void()> task;
        if (tryGetTask(self, task)) {
            {
                std::lock_guard<std::mutex> lock(stateMutex_);
                --queued_;
            }
            task();
            bool drained;
            {
                std::lock_guard<std::mutex> lock(stateMutex_);
                drained = (--unfinished_ == 0);
            }
            if (drained)
                idleCv_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(stateMutex_);
        workCv_.wait(lock,
                     [this] { return stopping_ || queued_ > 0; });
        if (stopping_ && queued_ == 0)
            return;
    }
}

} // namespace exec
} // namespace idp
