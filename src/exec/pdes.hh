/**
 * @file
 * Conservative (lookahead-window) parallel discrete-event simulation
 * of one storage-array run.
 *
 * The array is split into calendars: one coordinator (workload feed +
 * RAID fan-out), one per member drive, and one array-phase calendar
 * that replays drive completions and runs the bus. Drives interact
 * only through the array/bus layer, whose minimum cross-disk latency
 * L is known from the configuration — so every calendar may safely
 * simulate the window [T, T+L) in parallel, where T is the earliest
 * pending activity anywhere (the classic Chandy–Misra–Bryant
 * argument). Rounds alternate three phases:
 *
 *   A. coordinator runs its window serially, routing sub-requests
 *      into per-drive inbound queues (write bus movements are staged
 *      onto the array-phase calendar so channel occupancy stays in
 *      global tick order);
 *   B. every drive with work runs its window on a ThreadPool worker:
 *      consume inbox deliveries in (tick, sequence) order, fire local
 *      events, append completions to a private outbox — lock-free and
 *      allocation-free on the drive-local hot path;
 *   C. the outboxes merge in (tick, drive id, sequence) order onto
 *      the array-phase calendar, which replays join/bus logic
 *      serially.
 *
 * Determinism: phases B's calendars are disjoint, the merge order is
 * a total order independent of thread scheduling, and per-drive span
 * rings merge in drive-id order — so results are byte-identical at
 * any worker count, and (up to same-tick cross-calendar ties that the
 * tick resolution makes vanishingly rare) identical to the serial
 * path. Open-loop fan-outs with no bus have no completion feedback at
 * all: lookahead is infinite and the whole run is a single round of
 * full drive parallelism.
 *
 * Configurations with a zero-latency feedback path (RAID-5
 * read-modify-write without a bus, RAID-1's replica routing — which
 * prices each replica off live drive state: arm positions and
 * spindle phase under the positioning policy, queue depths under the
 * legacy one, both mutated by in-window dispatches on other
 * calendars) admit no conservative window and are rejected up front
 * with a clear error — see pdesUnsupportedReason().
 */

#ifndef IDP_EXEC_PDES_HH
#define IDP_EXEC_PDES_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "array/array_bridge.hh"
#include "array/storage_array.hh"
#include "disk/disk_drive.hh"
#include "exec/thread_pool.hh"
#include "sim/event_queue.hh"
#include "telemetry/tracer.hh"
#include "verify/invariant_checker.hh"
#include "workload/request.hh"

namespace idp {
namespace exec {

/** Resolved PDES controls for one run. */
struct PdesOptions
{
    bool enabled = false;
    unsigned workers = 1;

    /**
     * Resolve from a programmatic override and the environment:
     * @p override_workers < 0 follows IDP_PDES (off unless set to a
     * truthy value; worker count from IDP_PDES_WORKERS, else
     * configuredThreads()); 0 forces the serial path; > 0 forces PDES
     * with that many workers.
     */
    static PdesOptions resolve(int override_workers);
};

/**
 * Conservative lookahead window for @p params, in ticks: the minimum
 * latency of any completion->submission feedback path between drives.
 * kTickNever when no such path exists (open-loop fan-out without a
 * bus); 0 when a zero-latency path makes PDES inadmissible.
 */
sim::Tick pdesLookahead(const array::ArrayParams &params);

/** Why @p params cannot run under PDES, or nullptr if they can. */
const char *pdesUnsupportedReason(const array::ArrayParams &params);

/** Merge key at a synchronization horizon: completions replay in
 *  (tick, drive id, per-drive sequence) order. */
struct PdesCompletionKey
{
    sim::Tick tick = 0;
    std::uint32_t drive = 0;
    std::uint64_t seq = 0;
};

/** Strict total order of the horizon merge. */
inline bool
pdesMergeBefore(const PdesCompletionKey &a, const PdesCompletionKey &b)
{
    if (a.tick != b.tick)
        return a.tick < b.tick;
    if (a.drive != b.drive)
        return a.drive < b.drive;
    return a.seq < b.seq;
}

/**
 * One PDES run. Lifecycle:
 *
 *   PdesRun prun(params, workers, topts);
 *   array::StorageArray arr(prun.coordSim(), params, nullptr, &prun);
 *   prun.setArray(&arr);
 *   ... schedule the workload feed on prun.coordSim() ...
 *   prun.run();
 *
 * After run(), every calendar sits at endTick() — the same tick the
 * serial path's single calendar would end at — so downstream power /
 * mode-time integration closes identically.
 */
class PdesRun final : public array::ArrayBridge
{
  public:
    PdesRun(const array::ArrayParams &params, unsigned workers,
            const telemetry::TraceOptions &trace_options);
    ~PdesRun() override;

    PdesRun(const PdesRun &) = delete;
    PdesRun &operator=(const PdesRun &) = delete;

    /** The coordinator calendar (schedule the workload feed here). */
    sim::Simulator &coordSim() { return coordSim_; }

    /** Must be called once, before run(). */
    void setArray(array::StorageArray *arr) { arr_ = arr; }

    /** Drive the phased rounds until every calendar and queue drains. */
    void run();

    /** Common final tick of all calendars (valid after run()). */
    sim::Tick endTick() const { return endTick_; }

    /** Synchronization rounds executed (kTickNever lookahead = 1). */
    std::uint64_t rounds() const { return rounds_; }

    sim::Tick lookahead() const { return lookahead_; }
    unsigned workerCount() const { return workers_; }

    /** Kernel gauges summed over every calendar. */
    std::uint64_t eventsFired() const;
    std::uint64_t eventsCancelled() const;
    std::size_t peakPending() const;

    /**
     * The run's trace: the main tracer's product plus every drive
     * tracer's, appended in drive-id order with phase totals summed —
     * deterministic at any worker count.
     */
    telemetry::TraceData mergedTrace(const telemetry::Tracer &main) const;

    // -- ArrayBridge ------------------------------------------------
    sim::Tick now() const override { return active_->now(); }
    bool inArrayPhase() const override { return active_ == &arraySim_; }
    sim::Simulator &driveSim(std::uint32_t disk_idx) override
    {
        return *driveSims_[disk_idx];
    }
    sim::Simulator &arrayPhaseSim() override { return arraySim_; }
    void deliver(std::uint32_t disk_idx, const workload::IoRequest &sub,
                 sim::Tick at) override;
    void complete(std::uint32_t disk_idx, const workload::IoRequest &sub,
                  sim::Tick done, const disk::ServiceInfo &info) override;

  private:
    /** Inbound cross-layer delivery, consumed by a drive window in
     *  (at, seq) order; seq is a global push sequence so same-tick
     *  deliveries keep their issue order. */
    struct InItem
    {
        sim::Tick at;
        std::uint64_t seq;
        workload::IoRequest sub;
    };

    /** A drive completion awaiting its merge-ordered replay. */
    struct OutRec
    {
        sim::Tick done;
        std::uint64_t seq; ///< per-drive capture sequence
        std::uint32_t drive;
        workload::IoRequest sub;
        disk::ServiceInfo info;
    };

    sim::Tick nextActivityTick();
    void runDrives(sim::Tick horizon);
    /** Worker entry: installs the run's thread-local currents. */
    void driveWindowTask(std::uint32_t i, sim::Tick horizon);
    void runDriveWindow(std::uint32_t i, sim::Tick horizon);
    void mergePhase(sim::Tick horizon);
    void finishRun();

    sim::Simulator coordSim_;
    sim::Simulator arraySim_;
    std::vector<std::unique_ptr<sim::Simulator>> driveSims_;
    std::vector<std::vector<InItem>> inbox_;
    std::vector<std::vector<OutRec>> outbox_;
    std::vector<OutRec> merged_;
    /** Per-drive span rings (single-writer each); merged after run. */
    std::vector<std::unique_ptr<telemetry::Tracer>> driveTracers_;
    /** Drives with work in the current window (reused each round). */
    std::vector<std::uint32_t> busy_;

    array::StorageArray *arr_ = nullptr;
    sim::Simulator *active_ = &coordSim_;
    sim::Tick lookahead_ = 0;
    sim::Tick horizon_ = 0;
    sim::Tick endTick_ = 0;
    std::uint64_t rounds_ = 0;
    std::uint64_t deliverSeq_ = 0;
    unsigned workers_ = 1;

    /** Pool is created on the first round that has >= 2 busy drives;
     *  private to this run, so pool_->wait() is a safe barrier. */
    std::unique_ptr<ThreadPool> pool_;

    /** The run's thread-local currents, captured at run() start and
     *  re-installed inside every worker task. */
    verify::InvariantChecker *checker_ = nullptr;
    telemetry::Registry *registry_ = nullptr;
};

} // namespace exec
} // namespace idp

#endif // IDP_EXEC_PDES_HH
