/**
 * @file
 * Conservative (lookahead-window) parallel discrete-event simulation
 * of one storage-array run.
 *
 * The array is split into calendars: one coordinator (workload feed +
 * RAID fan-out), one per member drive, and one array-phase calendar
 * that replays drive completions and runs the bus. Drives interact
 * only through the array/bus layer, whose minimum cross-disk latency
 * L is known from the configuration — so every calendar may safely
 * simulate the window [T, T+L) in parallel, where T is the earliest
 * pending activity anywhere (the classic Chandy–Misra–Bryant
 * argument). Rounds alternate three phases:
 *
 *   A. coordinator runs its window serially, routing sub-requests
 *      into per-drive inbound queues (write bus movements are staged
 *      onto the array-phase calendar so channel occupancy stays in
 *      global tick order);
 *   B. every drive with work runs its window on a ThreadPool worker:
 *      consume inbox deliveries in (tick, sequence) order, fire local
 *      events, append completions to a private outbox — lock-free and
 *      allocation-free on the drive-local hot path;
 *   C. the outboxes merge in (tick, drive id, sequence) order onto
 *      the array-phase calendar, which replays join/bus logic
 *      serially.
 *
 * Determinism: phases B's calendars are disjoint, the merge order is
 * a total order independent of thread scheduling, and per-drive span
 * rings merge in drive-id order — so results are byte-identical at
 * any worker count, and (up to same-tick cross-calendar ties that the
 * tick resolution makes vanishingly rare) identical to the serial
 * path. Open-loop fan-outs with no bus have no completion feedback at
 * all: lookahead is infinite and the whole run is a single round of
 * full drive parallelism.
 *
 * Horizons come in two modes (IDP_PDES_HORIZON):
 *
 * - "static" reproduces the original engine exactly: the window width
 *   is a per-config constant L = pdesLookahead(params), and configs
 *   with a zero-latency feedback path (RAID-1 replica routing priced
 *   off live drive state, busless RAID-5 read-modify-write, the
 *   energy governor) are rejected up front — see
 *   pdesUnsupportedReason().
 *
 * - "dynamic" (the default) derives the horizon per round from live
 *   state instead of the spec, which makes all of the above legal.
 *   Each drive exports an admissible lower bound on its earliest next
 *   host-visible completion (DiskDrive::completionBoundTicks: exact
 *   in-flight transfer ends, phase floors of earlier stages, a
 *   queued-work floor of seek-free + rotation-free one-sector service
 *   — an idle drive with an empty inbox is unbounded until the
 *   coordinator feeds it). The round's horizon is the min over
 *   those bounds (when completions feed submissions), pending
 *   cross-layer deliveries plus their minimum service, the staged-bus
 *   latency, the next coordinator event (when coordinator events read
 *   live drive state — RAID-1 pricing, governor control, the rebuild
 *   pump), and explicit *horizon barriers* — membership-visible
 *   events (failDisk, rebuild start) registered via
 *   ArrayBridge::addBarrier. A round whose horizon collapses onto the
 *   round start executes as a *serial step*: every calendar is
 *   advanced to that tick and the phases loop to a fixpoint, so the
 *   event sees exactly the serial run's state; wider horizons run the
 *   usual parallel window. Conservative-window admissibility is the
 *   same Chandy–Misra–Bryant argument, with the bound re-derived
 *   every round.
 */

#ifndef IDP_EXEC_PDES_HH
#define IDP_EXEC_PDES_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "array/array_bridge.hh"
#include "array/storage_array.hh"
#include "disk/disk_drive.hh"
#include "exec/thread_pool.hh"
#include "sim/event_queue.hh"
#include "telemetry/tracer.hh"
#include "verify/invariant_checker.hh"
#include "workload/request.hh"

namespace idp {
namespace exec {

/** Resolved PDES controls for one run. */
struct PdesOptions
{
    bool enabled = false;
    unsigned workers = 1;

    /**
     * Resolve from a programmatic override and the environment:
     * @p override_workers < 0 follows IDP_PDES (off unless set to a
     * truthy value; worker count from IDP_PDES_WORKERS, else
     * configuredThreads()); 0 forces the serial path; > 0 forces PDES
     * with that many workers.
     */
    static PdesOptions resolve(int override_workers);
};

/** How the engine derives each round's synchronization horizon. */
enum class PdesHorizonMode
{
    Static,  ///< per-config constant lookahead (the original engine)
    Dynamic, ///< per-round state-derived bound + horizon barriers
};

/** IDP_PDES_HORIZON: unset/"dynamic" -> Dynamic, "static" -> Static;
 *  anything else is fatal. */
PdesHorizonMode pdesHorizonModeFromEnv();

/**
 * Conservative lookahead window for @p params, in ticks: the minimum
 * latency of any completion->submission feedback path between drives.
 * kTickNever when no such path exists (open-loop fan-out without a
 * bus); 0 when a zero-latency path makes static-mode PDES
 * inadmissible.
 */
sim::Tick pdesLookahead(const array::ArrayParams &params);

/** Why @p params cannot run under PDES in @p mode, or nullptr if they
 *  can. Dynamic horizons support every configuration. */
const char *pdesUnsupportedReason(const array::ArrayParams &params,
                                  PdesHorizonMode mode);

/** pdesUnsupportedReason under the environment-selected mode. */
const char *pdesUnsupportedReason(const array::ArrayParams &params);

/** Merge key at a synchronization horizon: completions replay in
 *  (tick, drive id, per-drive sequence) order. */
struct PdesCompletionKey
{
    sim::Tick tick = 0;
    std::uint32_t drive = 0;
    std::uint64_t seq = 0;
};

/** Strict total order of the horizon merge. */
inline bool
pdesMergeBefore(const PdesCompletionKey &a, const PdesCompletionKey &b)
{
    if (a.tick != b.tick)
        return a.tick < b.tick;
    if (a.drive != b.drive)
        return a.drive < b.drive;
    return a.seq < b.seq;
}

/**
 * One PDES run. Lifecycle:
 *
 *   PdesRun prun(params, workers, topts);
 *   array::StorageArray arr(prun.coordSim(), params, nullptr, &prun);
 *   prun.setArray(&arr);
 *   ... schedule the workload feed on prun.coordSim() ...
 *   prun.run();
 *
 * After run(), every calendar sits at endTick() — the same tick the
 * serial path's single calendar would end at — so downstream power /
 * mode-time integration closes identically.
 */
class PdesRun final : public array::ArrayBridge
{
  public:
    PdesRun(const array::ArrayParams &params, unsigned workers,
            const telemetry::TraceOptions &trace_options);
    ~PdesRun() override;

    PdesRun(const PdesRun &) = delete;
    PdesRun &operator=(const PdesRun &) = delete;

    /** The coordinator calendar (schedule the workload feed here). */
    sim::Simulator &coordSim() { return coordSim_; }

    /** Must be called once, before run(). */
    void setArray(array::StorageArray *arr) { arr_ = arr; }

    /** Drive the phased rounds until every calendar and queue drains. */
    void run();

    /** Common final tick of all calendars (valid after run()). */
    sim::Tick endTick() const { return endTick_; }

    /** Synchronization rounds executed (kTickNever lookahead = 1). */
    std::uint64_t rounds() const { return rounds_; }

    /** Rounds whose horizon collapsed onto the round start and ran as
     *  a fully synchronized serial step (dynamic mode only). */
    std::uint64_t serialSteps() const { return serialSteps_; }

    PdesHorizonMode horizonMode() const { return mode_; }

    /** Number of horizon-width histogram buckets: log2(h - t) clamps
     *  into [0, 62]; bucket 63 counts unbounded (kTickNever) rounds. */
    static constexpr std::size_t kHorizonBuckets = 64;

    /** Windowed-round width histogram, log2-bucketed; serial steps
     *  are counted by serialSteps(), not here. */
    const std::uint64_t *horizonWidthHist() const
    {
        return horizonHist_;
    }

    sim::Tick lookahead() const { return lookahead_; }
    unsigned workerCount() const { return workers_; }

    /** Kernel gauges summed over every calendar. */
    std::uint64_t eventsFired() const;
    std::uint64_t eventsCancelled() const;
    std::size_t peakPending() const;

    /**
     * The run's trace: the main tracer's product plus every drive
     * tracer's, appended in drive-id order with phase totals summed —
     * deterministic at any worker count.
     */
    telemetry::TraceData mergedTrace(const telemetry::Tracer &main) const;

    // -- ArrayBridge ------------------------------------------------
    sim::Tick now() const override { return active_->now(); }
    bool inArrayPhase() const override { return active_ == &arraySim_; }
    sim::Simulator &driveSim(std::uint32_t disk_idx) override
    {
        return *driveSims_[disk_idx];
    }
    sim::Simulator &arrayPhaseSim() override { return arraySim_; }
    void deliver(std::uint32_t disk_idx, const workload::IoRequest &sub,
                 sim::Tick at) override;
    void complete(std::uint32_t disk_idx, const workload::IoRequest &sub,
                  sim::Tick done, const disk::ServiceInfo &info) override;
    bool supportsBarriers() const override
    {
        return mode_ == PdesHorizonMode::Dynamic;
    }
    void addBarrier(sim::Tick at) override;
    bool atSerialStep() const override { return serialStepActive_; }
    void noteRebuildActive(bool active) override
    {
        rebuildActive_ = active;
    }
    bool wantsCompletionBounds() const override
    {
        return mode_ == PdesHorizonMode::Dynamic;
    }

  private:
    /** Inbound cross-layer delivery, consumed by a drive window in
     *  (at, seq) order; seq is a global push sequence so same-tick
     *  deliveries keep their issue order. */
    struct InItem
    {
        sim::Tick at;
        std::uint64_t seq;
        workload::IoRequest sub;
    };

    /** A drive completion awaiting its merge-ordered replay. */
    struct OutRec
    {
        sim::Tick done;
        std::uint64_t seq; ///< per-drive capture sequence
        std::uint32_t drive;
        workload::IoRequest sub;
        disk::ServiceInfo info;
    };

    sim::Tick nextActivityTick();
    /** Dynamic-mode horizon for the round starting at @p t: the min
     *  admissible bound over drives, inboxes, staged bus movements,
     *  barriers, and (when coordinator events read live drive state)
     *  the next coordinator event. Allocation-free. */
    sim::Tick computeHorizon(sim::Tick t);
    /** Execute tick @p t fully synchronized: advance every calendar
     *  to @p t and loop coordinator/drive/merge phases until no
     *  activity at or before @p t remains. */
    void serialStep(sim::Tick t);
    void runDrives(sim::Tick horizon);
    /** Worker entry: installs the run's thread-local currents. */
    void driveWindowTask(std::uint32_t i, sim::Tick horizon);
    void runDriveWindow(std::uint32_t i, sim::Tick horizon);
    void mergePhase(sim::Tick horizon);
    void finishRun();

    sim::Simulator coordSim_;
    sim::Simulator arraySim_;
    std::vector<std::unique_ptr<sim::Simulator>> driveSims_;
    std::vector<std::vector<InItem>> inbox_;
    std::vector<std::vector<OutRec>> outbox_;
    std::vector<OutRec> merged_;
    /** Per-drive span rings (single-writer each); merged after run. */
    std::vector<std::unique_ptr<telemetry::Tracer>> driveTracers_;
    /** Drives with work in the current window (reused each round). */
    std::vector<std::uint32_t> busy_;

    array::StorageArray *arr_ = nullptr;
    sim::Simulator *active_ = &coordSim_;
    sim::Tick lookahead_ = 0;
    sim::Tick horizon_ = 0;
    sim::Tick endTick_ = 0;
    std::uint64_t rounds_ = 0;
    std::uint64_t serialSteps_ = 0;
    std::uint64_t deliverSeq_ = 0;
    unsigned workers_ = 1;

    PdesHorizonMode mode_ = PdesHorizonMode::Dynamic;
    /** Coordinator events read live drive state (RAID-1 replica
     *  pricing, governor control ticks) — run them at serial steps. */
    bool serialCoordConfig_ = false;
    /** Completions feed new submissions with no bus latency (busless
     *  RAID-5 RMW) — cap horizons at the drive completion bounds. */
    bool feedbackConfig_ = false;
    /** A rebuild is streaming: its pump reads live foreground queue
     *  depths (serial coordinator) and its completions re-arm it
     *  (completion feedback), regardless of the base config. */
    bool rebuildActive_ = false;
    /** True outside the run loop and inside serial steps; guards
     *  membership-visible mutations (StorageArray::failDisk). */
    bool serialStepActive_ = true;
    /** Min staged-bus latency, kTickNever without a bus. */
    sim::Tick busLookahead_ = sim::kTickNever;
    /** Min-heap (std::greater) of barrier ticks; see addBarrier. */
    std::vector<sim::Tick> barriers_;
    std::uint64_t horizonHist_[kHorizonBuckets] = {};

    /** Pool is created on the first round that has >= 2 busy drives;
     *  private to this run, so pool_->wait() is a safe barrier. */
    std::unique_ptr<ThreadPool> pool_;

    /** The run's thread-local currents, captured at run() start and
     *  re-installed inside every worker task. */
    verify::InvariantChecker *checker_ = nullptr;
    telemetry::Registry *registry_ = nullptr;
};

} // namespace exec
} // namespace idp

#endif // IDP_EXEC_PDES_HH
