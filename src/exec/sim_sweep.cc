#include "exec/sim_sweep.hh"

#include "exec/sweep_runner.hh"

namespace idp {
namespace exec {

std::vector<core::RunResult>
runSimPoints(const std::vector<SimPoint> &points, unsigned threads)
{
    SweepRunner runner(threads);
    return runner.map(points,
                      [](const SimPoint &point, const SweepPoint &) {
                          return core::runTrace(*point.trace,
                                                point.config);
                      });
}

std::vector<core::RunResult>
runSystems(const workload::Trace &trace,
           const std::vector<core::SystemConfig> &systems,
           unsigned threads)
{
    std::vector<SimPoint> points;
    points.reserve(systems.size());
    for (const auto &system : systems)
        points.push_back(SimPoint{&trace, system});
    return runSimPoints(points, threads);
}

} // namespace exec
} // namespace idp
