/**
 * @file
 * CSV export of run results, for downstream plotting.
 *
 * Bench binaries print paper-style text tables; for regenerating the
 * figures graphically, these helpers dump the same series as CSV —
 * one row per CDF/PDF bucket with one column per system, plus a flat
 * summary file. The benches honour IDP_CSV_DIR: when set, each bench
 * drops its series there.
 */

#ifndef IDP_CORE_CSV_EXPORT_HH
#define IDP_CORE_CSV_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace idp {
namespace core {

/** Write response-time CDF rows (edge, one column per system). */
void writeCdfCsv(std::ostream &os,
                 const std::vector<RunResult> &results);
void writeCdfCsv(const std::string &path,
                 const std::vector<RunResult> &results);

/** Write rotational-latency PDF rows. */
void writeRotPdfCsv(std::ostream &os,
                    const std::vector<RunResult> &results);
void writeRotPdfCsv(const std::string &path,
                    const std::vector<RunResult> &results);

/** Write one summary row per system (perf + power breakdown). */
void writeSummaryCsv(std::ostream &os,
                     const std::vector<RunResult> &results);
void writeSummaryCsv(const std::string &path,
                     const std::vector<RunResult> &results);

/**
 * Write the telemetry-registry snapshots as long-form rows
 * (system,metric,value). Results without metrics contribute nothing.
 */
void writeMetricsCsv(std::ostream &os,
                     const std::vector<RunResult> &results);
void writeMetricsCsv(const std::string &path,
                     const std::vector<RunResult> &results);

/**
 * Bench helper: when IDP_CSV_DIR is set, write all three files as
 * <dir>/<stem>_{cdf,rotpdf,summary}.csv (plus <stem>_metrics.csv
 * for traced results) and return true.
 */
bool maybeExportCsv(const std::string &stem,
                    const std::vector<RunResult> &results);

/**
 * Write labeled telemetry rows in long form: a header of
 * "<label_column>,metric,value" followed by one row per sample per
 * series entry, in series order. The serving front end exports its
 * periodic registry snapshot deltas this way (the label being the
 * snapshot's simulated-time stamp).
 */
void writeLabeledMetricsCsv(
    std::ostream &os, const std::string &label_column,
    const std::vector<
        std::pair<std::string, std::vector<telemetry::MetricSample>>>
        &series);

} // namespace core
} // namespace idp

#endif // IDP_CORE_CSV_EXPORT_HH
