#include "core/closed_loop.hh"

#include <memory>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/sampler.hh"
#include "verify/verify.hh"

namespace idp {
namespace core {

double
ClosedLoopResult::impliedWorkers(double think_ms) const
{
    return throughputIops * (meanResponseMs + think_ms) / 1000.0;
}

ClosedLoopResult
runClosedLoop(const SystemConfig &config,
              const ClosedLoopParams &params)
{
    sim::simAssert(params.workers >= 1, "closed loop: needs workers");
    sim::simAssert(params.horizonSeconds > 0.0,
                   "closed loop: needs a horizon");

    // Same invariant-checking policy as runTrace: install unless the
    // environment disables it or the caller already installed one.
    std::unique_ptr<verify::InvariantChecker> checker;
    std::unique_ptr<verify::VerifyScope> verify_scope;
    if (verify::enabledFromEnv() &&
        verify::activeChecker() == nullptr) {
        checker = std::make_unique<verify::InvariantChecker>();
        verify_scope =
            std::make_unique<verify::VerifyScope>(checker.get());
    }

    sim::Simulator simul;
    sim::Rng rng(params.seed);
    stats::SampleSet responses;
    std::uint64_t completions = 0;
    const sim::Tick horizon =
        sim::secondsToTicks(params.horizonSeconds);

    // Worker w's requests carry id = (w << 32) | sequence.
    std::vector<std::uint64_t> next_seq(params.workers, 0);
    std::function<void(std::uint32_t)> issue; // wired below

    array::StorageArray arr(
        simul, config.array,
        [&](const workload::IoRequest &req, sim::Tick done) {
            responses.add(sim::ticksToMs(done - req.arrival));
            ++completions;
            if (done >= horizon)
                return; // past the horizon: this worker retires
            const std::uint32_t w =
                static_cast<std::uint32_t>(req.id >> 32);
            const sim::Tick think =
                sim::msToTicks(rng.exponential(params.thinkMs));
            simul.schedule(done + think, [&issue, w] { issue(w); });
        });

    const std::uint64_t space = params.addressSpaceSectors
        ? params.addressSpaceSectors
        : arr.logicalSectors();
    sim::simAssert(space > params.maxSectors,
                   "closed loop: address space too small");

    issue = [&](std::uint32_t w) {
        workload::IoRequest req;
        req.id = (static_cast<std::uint64_t>(w) << 32) |
            next_seq[w]++;
        req.arrival = simul.now();
        req.isRead = rng.chance(params.readFraction);
        req.sectors = static_cast<std::uint32_t>(rng.uniformInt(
            static_cast<std::int64_t>(params.minSectors),
            static_cast<std::int64_t>(params.maxSectors)));
        // Per-request limit, matching the synthetic generator: every
        // LBA with lba + sectors <= space is drawable, so short
        // requests can reach the end of the address space instead of
        // leaving a maxSectors-sized dead zone.
        req.lba = rng.uniformInt(space - req.sectors + 1);
        arr.submit(req);
    };

    // Stagger initial issues across one think time.
    for (std::uint32_t w = 0; w < params.workers; ++w) {
        const sim::Tick start =
            sim::msToTicks(rng.exponential(params.thinkMs));
        simul.schedule(start, [&issue, w] { issue(w); });
    }
    simul.run();
    if (checker)
        checker->finalize();
    responses.seal();

    ClosedLoopResult result;
    result.completions = completions;
    result.horizonSeconds = sim::ticksToSeconds(simul.now());
    result.throughputIops = result.horizonSeconds > 0.0
        ? static_cast<double>(completions) / result.horizonSeconds
        : 0.0;
    result.meanResponseMs = responses.mean();
    result.p90ResponseMs = responses.p90();
    result.power = arr.finishPower();
    return result;
}

} // namespace core
} // namespace idp
