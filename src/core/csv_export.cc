#include "core/csv_export.hh"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "sim/logging.hh"
#include "stats/table.hh"

namespace idp {
namespace core {

namespace {

std::ofstream
open(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open CSV file for writing: " + path);
    return os;
}

} // namespace

void
writeCdfCsv(std::ostream &os, const std::vector<RunResult> &results)
{
    os << "edge_ms";
    for (const auto &r : results)
        os << ',' << r.system;
    os << '\n';
    if (results.empty())
        return;
    const std::size_t buckets = results.front().responseHist.buckets();
    for (std::size_t b = 0; b < buckets; ++b) {
        const double edge = results.front().responseHist.upperEdge(b);
        if (b + 1 < buckets)
            os << edge;
        else
            os << "inf";
        for (const auto &r : results)
            os << ',' << stats::fmt(r.responseHist.cdfAt(b), 6);
        os << '\n';
    }
}

void
writeCdfCsv(const std::string &path,
            const std::vector<RunResult> &results)
{
    std::ofstream os = open(path);
    writeCdfCsv(os, results);
}

void
writeRotPdfCsv(std::ostream &os, const std::vector<RunResult> &results)
{
    os << "edge_ms";
    for (const auto &r : results)
        os << ',' << r.system;
    os << '\n';
    if (results.empty())
        return;
    const std::size_t buckets = results.front().rotHist.buckets();
    for (std::size_t b = 0; b < buckets; ++b) {
        const double edge = results.front().rotHist.upperEdge(b);
        if (b + 1 < buckets)
            os << edge;
        else
            os << "inf";
        for (const auto &r : results)
            os << ',' << stats::fmt(r.rotHist.pdfAt(b), 6);
        os << '\n';
    }
}

void
writeRotPdfCsv(const std::string &path,
               const std::vector<RunResult> &results)
{
    std::ofstream os = open(path);
    writeRotPdfCsv(os, results);
}

void
writeSummaryCsv(std::ostream &os,
                const std::vector<RunResult> &results)
{
    os << "system,requests,mean_ms,p90_ms,p99_ms,mean_rot_ms,iops,"
          "nonzero_seek,idle_w,seek_w,rot_w,transfer_w,total_w\n";
    for (const auto &r : results) {
        os << r.system << ',' << r.requests << ','
           << stats::fmt(r.meanResponseMs, 4) << ','
           << stats::fmt(r.p90ResponseMs, 4) << ','
           << stats::fmt(r.p99ResponseMs, 4) << ','
           << stats::fmt(r.meanRotMs, 4) << ','
           << stats::fmt(r.throughputIops, 2) << ','
           << stats::fmt(r.nonzeroSeekFraction, 4) << ','
           << stats::fmt(r.power.modeAvgW(stats::DiskMode::Idle), 4)
           << ','
           << stats::fmt(r.power.modeAvgW(stats::DiskMode::Seek), 4)
           << ','
           << stats::fmt(r.power.modeAvgW(stats::DiskMode::RotWait), 4)
           << ','
           << stats::fmt(r.power.modeAvgW(stats::DiskMode::Transfer),
                         4)
           << ',' << stats::fmt(r.power.totalAvgW(), 4) << '\n';
    }
}

void
writeSummaryCsv(const std::string &path,
                const std::vector<RunResult> &results)
{
    std::ofstream os = open(path);
    writeSummaryCsv(os, results);
}

void
writeMetricsCsv(std::ostream &os,
                const std::vector<RunResult> &results)
{
    os << "system,metric,value\n";
    for (const auto &r : results)
        for (const auto &m : r.metrics)
            os << r.system << ',' << m.name << ','
               << stats::fmt(m.value, 6) << '\n';
}

void
writeMetricsCsv(const std::string &path,
                const std::vector<RunResult> &results)
{
    std::ofstream os = open(path);
    writeMetricsCsv(os, results);
}

bool
maybeExportCsv(const std::string &stem,
               const std::vector<RunResult> &results)
{
    const char *dir = std::getenv("IDP_CSV_DIR");
    if (dir == nullptr || *dir == '\0')
        return false;
    const std::string base = std::string(dir) + "/" + stem;
    writeCdfCsv(base + "_cdf.csv", results);
    writeRotPdfCsv(base + "_rotpdf.csv", results);
    writeSummaryCsv(base + "_summary.csv", results);
    bool any_metrics = false;
    for (const auto &r : results)
        any_metrics = any_metrics || !r.metrics.empty();
    if (any_metrics)
        writeMetricsCsv(base + "_metrics.csv", results);
    return true;
}

void
writeLabeledMetricsCsv(
    std::ostream &os, const std::string &label_column,
    const std::vector<
        std::pair<std::string, std::vector<telemetry::MetricSample>>>
        &series)
{
    os << label_column << ",metric,value\n";
    for (const auto &[label, samples] : series)
        for (const auto &m : samples)
            os << label << ',' << m.name << ','
               << stats::fmt(m.value, 6) << '\n';
}

} // namespace core
} // namespace idp
