#include "core/report.hh"

#include <sstream>

#include "stats/table.hh"

namespace idp {
namespace core {

using stats::fmt;
using stats::TextTable;

void
printResponseCdf(std::ostream &os, const std::string &title,
                 const std::vector<RunResult> &results)
{
    TextTable table(title);
    std::vector<std::string> header = {"RespTime(ms)"};
    for (const auto &r : results)
        header.push_back(r.system);
    table.setHeader(header);

    if (results.empty())
        return;
    const auto &edges = stats::paperResponseEdgesMs();
    for (std::size_t b = 0; b <= edges.size(); ++b) {
        std::vector<std::string> row;
        if (b < edges.size())
            row.push_back(fmt(edges[b], 0));
        else
            row.push_back("200+");
        for (const auto &r : results)
            row.push_back(fmt(r.responseHist.cdfAt(b), 3));
        table.addRow(row);
    }
    table.print(os);
    os << '\n';
}

void
printRotPdf(std::ostream &os, const std::string &title,
            const std::vector<RunResult> &results)
{
    TextTable table(title);
    std::vector<std::string> header = {"RotLat(ms)"};
    for (const auto &r : results)
        header.push_back(r.system);
    table.setHeader(header);

    if (results.empty())
        return;
    const std::size_t buckets = results.front().rotHist.buckets();
    for (std::size_t b = 0; b < buckets; ++b) {
        std::vector<std::string> row;
        const double edge = results.front().rotHist.upperEdge(b);
        if (b + 1 < buckets) {
            std::ostringstream label;
            label << "<=" << fmt(edge, 0);
            row.push_back(label.str());
        } else {
            row.push_back("more");
        }
        for (const auto &r : results)
            row.push_back(fmt(r.rotHist.pdfAt(b), 3));
        table.addRow(row);
    }
    table.print(os);
    os << '\n';
}

void
printPowerBreakdown(std::ostream &os, const std::string &title,
                    const std::vector<RunResult> &results)
{
    TextTable table(title);
    table.setHeader({"System", "Idle(W)", "Seek(W)", "RotLat(W)",
                     "Transfer(W)", "Total(W)"});
    for (const auto &r : results) {
        table.addRow({
            r.system,
            fmt(r.power.modeAvgW(stats::DiskMode::Idle), 2),
            fmt(r.power.modeAvgW(stats::DiskMode::Seek), 2),
            fmt(r.power.modeAvgW(stats::DiskMode::RotWait), 2),
            fmt(r.power.modeAvgW(stats::DiskMode::Transfer), 2),
            fmt(r.power.totalAvgW(), 2),
        });
    }
    table.print(os);
    os << '\n';
}

void
printSummary(std::ostream &os, const std::string &title,
             const std::vector<RunResult> &results)
{
    TextTable table(title);
    table.setHeader({"System", "Mean(ms)", "P90(ms)", "P99(ms)",
                     "MeanRot(ms)", "IOPS", "NonzeroSeek",
                     "AvgPower(W)"});
    for (const auto &r : results) {
        table.addRow({
            r.system,
            fmt(r.meanResponseMs, 2),
            fmt(r.p90ResponseMs, 2),
            fmt(r.p99ResponseMs, 2),
            fmt(r.meanRotMs, 2),
            fmt(r.throughputIops, 0),
            stats::fmtPct(r.nonzeroSeekFraction, 1),
            fmt(r.power.totalAvgW(), 2),
        });
    }
    table.print(os);
    os << '\n';
}

} // namespace core
} // namespace idp
