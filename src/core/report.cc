#include "core/report.hh"

#include <sstream>

#include "stats/table.hh"

namespace idp {
namespace core {

using stats::fmt;
using stats::TextTable;

void
printResponseCdf(std::ostream &os, const std::string &title,
                 const std::vector<RunResult> &results)
{
    TextTable table(title);
    std::vector<std::string> header = {"RespTime(ms)"};
    for (const auto &r : results)
        header.push_back(r.system);
    table.setHeader(header);

    if (results.empty())
        return;
    const auto &edges = stats::paperResponseEdgesMs();
    for (std::size_t b = 0; b <= edges.size(); ++b) {
        std::vector<std::string> row;
        if (b < edges.size())
            row.push_back(fmt(edges[b], 0));
        else
            row.push_back("200+");
        for (const auto &r : results)
            row.push_back(fmt(r.responseHist.cdfAt(b), 3));
        table.addRow(row);
    }
    table.print(os);
    os << '\n';
}

void
printRotPdf(std::ostream &os, const std::string &title,
            const std::vector<RunResult> &results)
{
    TextTable table(title);
    std::vector<std::string> header = {"RotLat(ms)"};
    for (const auto &r : results)
        header.push_back(r.system);
    table.setHeader(header);

    if (results.empty())
        return;
    const std::size_t buckets = results.front().rotHist.buckets();
    for (std::size_t b = 0; b < buckets; ++b) {
        std::vector<std::string> row;
        const double edge = results.front().rotHist.upperEdge(b);
        if (b + 1 < buckets) {
            std::ostringstream label;
            label << "<=" << fmt(edge, 0);
            row.push_back(label.str());
        } else {
            row.push_back("more");
        }
        for (const auto &r : results)
            row.push_back(fmt(r.rotHist.pdfAt(b), 3));
        table.addRow(row);
    }
    table.print(os);
    os << '\n';
}

void
printPowerBreakdown(std::ostream &os, const std::string &title,
                    const std::vector<RunResult> &results)
{
    TextTable table(title);
    table.setHeader({"System", "Idle(W)", "Seek(W)", "RotLat(W)",
                     "Transfer(W)", "Total(W)"});
    for (const auto &r : results) {
        table.addRow({
            r.system,
            fmt(r.power.modeAvgW(stats::DiskMode::Idle), 2),
            fmt(r.power.modeAvgW(stats::DiskMode::Seek), 2),
            fmt(r.power.modeAvgW(stats::DiskMode::RotWait), 2),
            fmt(r.power.modeAvgW(stats::DiskMode::Transfer), 2),
            fmt(r.power.totalAvgW(), 2),
        });
    }
    table.print(os);
    os << '\n';
}

telemetry::SpanKind
dominantServiceComponent(const telemetry::TraceData &trace,
                         double *total_ms)
{
    telemetry::SpanKind best = telemetry::SpanKind::Seek;
    double best_ms = -1.0;
    for (std::size_t k = 0; k < telemetry::kSpanKindCount; ++k) {
        const auto kind = static_cast<telemetry::SpanKind>(k);
        if (!telemetry::isServiceComponent(kind))
            continue;
        const double ms = trace.totalMs(kind);
        if (ms > best_ms) {
            best_ms = ms;
            best = kind;
        }
    }
    if (total_ms != nullptr)
        *total_ms = best_ms;
    return best;
}

void
printAttribution(std::ostream &os, const std::string &title,
                 const std::vector<RunResult> &results)
{
    TextTable table(title);
    table.setHeader({"System", "Phase", "Count", "Mean(ms)",
                     "Total(s)", "ServiceShare"});
    bool skipped = false;
    for (const auto &r : results) {
        if (!r.trace) {
            skipped = true;
            continue;
        }
        const telemetry::TraceData &trace = *r.trace;
        double service_ms = 0.0;
        for (std::size_t k = 0; k < telemetry::kSpanKindCount; ++k) {
            const auto kind = static_cast<telemetry::SpanKind>(k);
            if (telemetry::isServiceComponent(kind))
                service_ms += trace.totalMs(kind);
        }
        for (std::size_t k = 0; k < telemetry::kSpanKindCount; ++k) {
            const auto kind = static_cast<telemetry::SpanKind>(k);
            const telemetry::PhaseAccum &accum = trace.phase(kind);
            if (accum.count == 0)
                continue;
            const double total = trace.totalMs(kind);
            std::string share = "-";
            if (telemetry::isServiceComponent(kind) &&
                service_ms > 0.0)
                share = stats::fmtPct(total / service_ms, 1);
            table.addRow({
                r.system,
                telemetry::spanKindName(kind),
                fmt(static_cast<double>(accum.count), 0),
                fmt(trace.meanMs(kind), 3),
                fmt(total / 1000.0, 2),
                share,
            });
        }
        double dom_ms = 0.0;
        const auto dom = dominantServiceComponent(trace, &dom_ms);
        table.addRow({
            r.system,
            "dominant",
            "-",
            "-",
            fmt(dom_ms / 1000.0, 2),
            telemetry::spanKindName(dom),
        });
    }
    table.print(os);
    if (skipped)
        os << "(untraced results omitted; run with IDP_TRACE=1)\n";
    os << '\n';
}

void
printSummary(std::ostream &os, const std::string &title,
             const std::vector<RunResult> &results)
{
    TextTable table(title);
    table.setHeader({"System", "Mean(ms)", "P90(ms)", "P99(ms)",
                     "MeanRot(ms)", "IOPS", "NonzeroSeek",
                     "AvgPower(W)"});
    for (const auto &r : results) {
        table.addRow({
            r.system,
            fmt(r.meanResponseMs, 2),
            fmt(r.p90ResponseMs, 2),
            fmt(r.p99ResponseMs, 2),
            fmt(r.meanRotMs, 2),
            fmt(r.throughputIops, 0),
            stats::fmtPct(r.nonzeroSeekFraction, 1),
            fmt(r.power.totalAvgW(), 2),
        });
    }
    table.print(os);
    os << '\n';
}

} // namespace core
} // namespace idp
