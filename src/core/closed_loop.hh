/**
 * @file
 * Closed-loop workload driver.
 *
 * The paper's traces are open-loop (arrivals don't react to service),
 * which is the right model for consolidation what-ifs; interactive
 * systems, however, are closed: N users each think for a while, issue
 * one request, and wait for it. This driver runs N workers against a
 * storage system until a horizon, which (a) models OLTP user
 * populations, and (b) gives the validation suite the interactive
 * response-time law N = X * (R + Z) to check the simulator against.
 */

#ifndef IDP_CORE_CLOSED_LOOP_HH
#define IDP_CORE_CLOSED_LOOP_HH

#include <cstdint>

#include "core/experiment.hh"

namespace idp {
namespace core {

/** Closed-loop population parameters. */
struct ClosedLoopParams
{
    std::uint32_t workers = 8;
    /** Mean think time between a completion and the next issue, ms. */
    double thinkMs = 20.0;
    /** Run horizon, simulated seconds. */
    double horizonSeconds = 30.0;
    double readFraction = 0.6;
    std::uint32_t minSectors = 8;
    std::uint32_t maxSectors = 64;
    /** Logical region the workers address (defaults to the system). */
    std::uint64_t addressSpaceSectors = 0;
    std::uint64_t seed = 0xC105ED;
};

/** Results of a closed-loop run. */
struct ClosedLoopResult
{
    std::uint64_t completions = 0;
    double horizonSeconds = 0.0;
    double throughputIops = 0.0;
    double meanResponseMs = 0.0;
    double p90ResponseMs = 0.0;
    power::PowerBreakdown power;

    /**
     * The interactive response-time law's prediction of the worker
     * count from measured X, R and the configured think time Z:
     * N = X * (R + Z). Should match params.workers in steady state.
     */
    double impliedWorkers(double think_ms) const;
};

/** Run a closed-loop population against @p config. */
ClosedLoopResult runClosedLoop(const SystemConfig &config,
                               const ClosedLoopParams &params);

} // namespace core
} // namespace idp

#endif // IDP_CORE_CLOSED_LOOP_HH
