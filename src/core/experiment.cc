#include "core/experiment.hh"

#include <algorithm>
#include <cstdlib>

#include "exec/pdes.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "telemetry/telemetry.hh"
#include "verify/verify.hh"

namespace idp {
namespace core {

std::uint64_t
traceDeviceSectors(const workload::WorkloadModel &model)
{
    return static_cast<std::uint64_t>(model.capacityGB * 1e9 /
                                      geom::kSectorBytes);
}

SystemConfig
makeMdSystem(workload::Commercial kind)
{
    const auto &model = workload::workloadModel(kind);
    SystemConfig config;
    config.name = "MD";
    config.array.layout = array::Layout::PassThrough;
    config.array.disks = model.disks;
    config.array.drive = disk::enterpriseDrive(
        model.capacityGB, model.rpm, model.platters);
    return config;
}

SystemConfig
makeHcsdSystem(workload::Commercial kind)
{
    const auto &model = workload::workloadModel(kind);
    SystemConfig config;
    config.name = "HC-SD";
    config.array.layout = array::Layout::Concat;
    config.array.disks = 1;
    config.array.drive = disk::barracudaEs750();
    config.array.deviceSectors.assign(model.disks,
                                      traceDeviceSectors(model));
    return config;
}

SystemConfig
makeSaSystem(workload::Commercial kind, std::uint32_t actuators,
             std::uint32_t rpm)
{
    SystemConfig config = makeHcsdSystem(kind);
    disk::DriveSpec drive =
        disk::makeIntraDiskParallel(disk::barracudaEs750(), actuators);
    if (rpm != drive.rpm)
        drive = disk::withRpm(drive, rpm);
    config.array.drive = drive;
    config.name = drive.name;
    return config;
}

SystemConfig
makeRaid0System(const std::string &name, const disk::DriveSpec &drive,
                std::uint32_t disks, std::uint32_t stripe_sectors)
{
    SystemConfig config;
    config.name = name;
    config.array.layout = disks == 1 ? array::Layout::Concat
                                     : array::Layout::Raid0;
    config.array.disks = disks;
    config.array.drive = drive;
    config.array.stripeSectors = stripe_sectors;
    if (disks == 1) {
        // Degenerate single-drive "array": whole disk as one device.
        config.array.deviceSectors.clear();
    }
    return config;
}

RunResult
runTrace(const workload::Trace &trace, const SystemConfig &config)
{
    return runTrace(trace, config, telemetry::TraceOptions::fromEnv());
}

RunResult
runTrace(const workload::Trace &trace, const SystemConfig &config,
         const telemetry::TraceOptions &trace_options)
{
    sim::simAssert(!trace.empty(), "runTrace: empty trace");

    // Install the per-run telemetry currents *before* the system is
    // built: modules grab their counter handles at construction.
    std::unique_ptr<telemetry::Registry> registry;
    std::unique_ptr<telemetry::Tracer> tracer;
    std::unique_ptr<telemetry::RegistryScope> registry_scope;
    std::unique_ptr<telemetry::TraceScope> trace_scope;
    if (telemetry::kCompiledIn && trace_options.enabled) {
        registry = std::make_unique<telemetry::Registry>();
        tracer = std::make_unique<telemetry::Tracer>(trace_options);
        registry_scope =
            std::make_unique<telemetry::RegistryScope>(registry.get());
        trace_scope =
            std::make_unique<telemetry::TraceScope>(tracer.get());
    }

    // Runtime invariant checking rides along unless IDP_VERIFY=0 (or
    // the build compiled it out). A checker already installed by the
    // caller — tests observing this run — takes precedence.
    std::unique_ptr<verify::InvariantChecker> checker;
    std::unique_ptr<verify::VerifyScope> verify_scope;
    if (verify::enabledFromEnv() &&
        verify::activeChecker() == nullptr) {
        checker = std::make_unique<verify::InvariantChecker>();
        verify_scope =
            std::make_unique<verify::VerifyScope>(checker.get());
    }

    // Conservative intra-run PDES: opt-in per config or environment.
    // The serial path below stays untouched when disabled.
    const exec::PdesOptions pdes =
        exec::PdesOptions::resolve(config.pdesWorkers);
    std::unique_ptr<exec::PdesRun> prun;
    if (pdes.enabled)
        prun = std::make_unique<exec::PdesRun>(
            config.array, pdes.workers, trace_options);

    sim::Simulator serial_sim;
    sim::Simulator &simul = prun ? prun->coordSim() : serial_sim;
    array::StorageArray arr(simul, config.array, nullptr, prun.get());
    if (prun)
        prun->setArray(&arr);

    // Feed arrivals incrementally so the event queue stays small even
    // for multi-million-request traces.
    std::size_t next = 0;
    std::function<void()> feed = [&] {
        const workload::IoRequest &req = trace[next];
        ++next;
        if (next < trace.size())
            simul.schedule(trace[next].arrival, feed);
        arr.submit(req);
    };
    simul.schedule(trace.front().arrival, feed);
    if (prun)
        prun->run();
    else
        simul.run();
    const sim::Tick end_tick = prun ? prun->endTick() : simul.now();

    sim::simAssert(arr.idle(), "runTrace: array not drained");
    sim::simAssert(arr.stats().logicalCompletions == trace.size(),
                   "runTrace: lost requests");
    if (checker)
        checker->finalize();
    arr.sealStats();

    RunResult result;
    result.system = config.name;
    result.requests = trace.size();
    result.completions = arr.stats().logicalCompletions;
    result.wallSeconds = sim::ticksToSeconds(end_tick);
    result.responseHist = arr.stats().responseHist;
    result.rotHist = arr.stats().rotHist;
    result.meanResponseMs = arr.stats().responseMs.mean();
    result.p90ResponseMs = arr.stats().responseMs.p90();
    result.p99ResponseMs = arr.stats().responseMs.p99();
    result.meanRotMs = arr.stats().rotMs.mean();
    result.power = arr.finishPower();

    std::uint64_t nonzero = 0;
    for (std::uint32_t i = 0; i < arr.diskCount(); ++i) {
        const auto &ds = arr.diskAt(i).stats();
        result.cacheHits += ds.cacheHits;
        result.mediaAccesses += ds.mediaAccesses;
        result.mediaRetries += ds.mediaRetries;
        result.hardErrors += ds.hardErrors;
        nonzero += ds.nonzeroSeeks;
    }
    result.nonzeroSeekFraction = result.mediaAccesses
        ? static_cast<double>(nonzero) /
            static_cast<double>(result.mediaAccesses)
        : 0.0;
    result.throughputIops = result.wallSeconds > 0.0
        ? static_cast<double>(result.completions) / result.wallSeconds
        : 0.0;

    if (registry) {
        // Event-kernel health gauges join the module counters. Under
        // PDES they aggregate over every calendar: the totals differ
        // from the serial single-calendar numbers by the replay/
        // delivery mechanics (and deliberately so) — module counters
        // and all statistics above are mode-independent.
        registry->setGauge(
            "sim.events_fired",
            static_cast<double>(prun ? prun->eventsFired()
                                     : simul.eventsFired()));
        registry->setGauge(
            "sim.peak_pending",
            static_cast<double>(prun ? prun->peakPending()
                                     : simul.peakPending()));
        registry->setGauge(
            "sim.events_cancelled",
            static_cast<double>(prun ? prun->eventsCancelled()
                                     : simul.eventsCancelled()));
        if (prun) {
            registry->setGauge(
                "sim.pdes_rounds",
                static_cast<double>(prun->rounds()));
            registry->setGauge(
                "sim.pdes_serial_steps",
                static_cast<double>(prun->serialSteps()));
            // Median horizon width (log2 bucket midpoint) tells at a
            // glance whether the dynamic bounds are opening useful
            // windows or collapsing to serial steps.
            const std::uint64_t *hist = prun->horizonWidthHist();
            std::uint64_t total = 0;
            for (std::size_t b = 0; b < exec::PdesRun::kHorizonBuckets;
                 ++b)
                total += hist[b];
            if (total != 0) {
                std::uint64_t seen = 0;
                std::size_t median = 0;
                for (std::size_t b = 0;
                     b < exec::PdesRun::kHorizonBuckets; ++b) {
                    seen += hist[b];
                    if (seen * 2 >= total) {
                        median = b;
                        break;
                    }
                }
                registry->setGauge(
                    "sim.pdes_horizon_log2_median",
                    static_cast<double>(median));
            }
        }
        result.metrics = registry->snapshot();
    }
    if (tracer)
        result.trace = std::make_shared<const telemetry::TraceData>(
            prun ? prun->mergedTrace(*tracer) : tracer->finish());
    return result;
}

std::uint64_t
benchRequestCount(std::uint64_t default_requests)
{
    if (const char *env = std::getenv("IDP_REQUESTS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    double scale = 1.0;
    if (const char *env = std::getenv("IDP_SCALE")) {
        scale = std::atof(env);
        if (scale < 0.01)
            scale = 0.01;
    }
    const double scaled =
        static_cast<double>(default_requests) * scale;
    return std::max<std::uint64_t>(
        1000, static_cast<std::uint64_t>(scaled));
}

std::uint64_t
envOverrideU64(const char *name, std::uint64_t def)
{
    if (const char *env = std::getenv(name)) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<std::uint64_t>(v);
    }
    return def;
}

double
envOverrideDouble(const char *name, double def)
{
    if (const char *env = std::getenv(name)) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return def;
}

} // namespace core
} // namespace idp
