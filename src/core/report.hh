/**
 * @file
 * Rendering helpers shared by the bench harnesses.
 *
 * The benches regenerate the paper's figures as terminal tables: CDFs
 * over the paper's response-time buckets (Figures 2, 4, 5, 7),
 * rotational-latency PDFs (Figure 5), four-mode power stacks (Figures
 * 3, 6), and iso-performance summaries (Figures 8, 9).
 */

#ifndef IDP_CORE_REPORT_HH
#define IDP_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace idp {
namespace core {

/** Print response-time CDFs, one column per system. */
void printResponseCdf(std::ostream &os, const std::string &title,
                      const std::vector<RunResult> &results);

/** Print rotational-latency PDFs, one column per system. */
void printRotPdf(std::ostream &os, const std::string &title,
                 const std::vector<RunResult> &results);

/** Print the four-mode average-power breakdown, one row per system. */
void printPowerBreakdown(std::ostream &os, const std::string &title,
                         const std::vector<RunResult> &results);

/** One-line performance summary per system (mean/p90/p99, IOPS). */
void printSummary(std::ostream &os, const std::string &title,
                  const std::vector<RunResult> &results);

} // namespace core
} // namespace idp

#endif // IDP_CORE_REPORT_HH
