/**
 * @file
 * Rendering helpers shared by the bench harnesses.
 *
 * The benches regenerate the paper's figures as terminal tables: CDFs
 * over the paper's response-time buckets (Figures 2, 4, 5, 7),
 * rotational-latency PDFs (Figure 5), four-mode power stacks (Figures
 * 3, 6), and iso-performance summaries (Figures 8, 9).
 */

#ifndef IDP_CORE_REPORT_HH
#define IDP_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace idp {
namespace core {

/** Print response-time CDFs, one column per system. */
void printResponseCdf(std::ostream &os, const std::string &title,
                      const std::vector<RunResult> &results);

/** Print rotational-latency PDFs, one column per system. */
void printRotPdf(std::ostream &os, const std::string &title,
                 const std::vector<RunResult> &results);

/** Print the four-mode average-power breakdown, one row per system. */
void printPowerBreakdown(std::ostream &os, const std::string &title,
                         const std::vector<RunResult> &results);

/** One-line performance summary per system (mean/p90/p99, IOPS). */
void printSummary(std::ostream &os, const std::string &title,
                  const std::vector<RunResult> &results);

/**
 * Print the measured time-attribution table: for each traced system,
 * mean milliseconds per occurrence and total share of service time
 * for every span kind, plus the dominant service component
 * (seek / rot_wait / channel_wait / transfer). Untraced results (no
 * RunResult::trace) are skipped with a note.
 */
void printAttribution(std::ostream &os, const std::string &title,
                      const std::vector<RunResult> &results);

/**
 * The service component (Seek/RotWait/ChannelWait/Transfer) with the
 * largest total time in @p trace. Returns the kind and writes the
 * total milliseconds to @p total_ms when non-null.
 */
telemetry::SpanKind dominantServiceComponent(
    const telemetry::TraceData &trace, double *total_ms = nullptr);

} // namespace core
} // namespace idp

#endif // IDP_CORE_REPORT_HH
