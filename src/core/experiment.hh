/**
 * @file
 * Experiment-level system builders and the trace runner.
 *
 * This is the library's top-level API: it assembles the storage
 * systems the paper compares —
 *
 *   MD          the original performance-tuned multi-disk system a
 *               trace was collected on (Table 2),
 *   HC-SD       one high-capacity conventional drive holding every
 *               device's data back-to-back (the limit study),
 *   HC-SD-SA(n) the intra-disk parallel drive with n arm assemblies,
 *               optionally at a reduced RPM,
 *   RAID-0      arrays of any of the above drives (Section 7.3),
 *
 * runs a request stream against a system, and returns response-time /
 * rotational-latency distributions plus the four-mode power breakdown.
 */

#ifndef IDP_CORE_EXPERIMENT_HH
#define IDP_CORE_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/storage_array.hh"
#include "disk/drive_config.hh"
#include "power/power_model.hh"
#include "stats/histogram.hh"
#include "stats/sampler.hh"
#include "telemetry/registry.hh"
#include "telemetry/tracer.hh"
#include "workload/commercial.hh"
#include "workload/request.hh"

namespace idp {
namespace core {

/** A named storage system under test. */
struct SystemConfig
{
    std::string name;
    array::ArrayParams array;
    /**
     * Intra-run PDES control for runTrace: < 0 (default) follows the
     * IDP_PDES / IDP_PDES_WORKERS environment, 0 forces the serial
     * event loop, > 0 forces PDES with that many workers. Results are
     * byte-identical either way; unsupported configurations (see
     * exec::pdesUnsupportedReason) fail fast when PDES is requested.
     */
    int pdesWorkers = -1;
};

/** Per-device sector count used for Concat offsets, from Table 2. */
std::uint64_t traceDeviceSectors(const workload::WorkloadModel &model);

/** The original multi-disk system of @p kind (Table 2 row). */
SystemConfig makeMdSystem(workload::Commercial kind);

/** The limit-study single high-capacity drive holding @p kind's data. */
SystemConfig makeHcsdSystem(workload::Commercial kind);

/**
 * The intra-disk parallel system: HC-SD extended with @p actuators arm
 * assemblies at @p rpm (7200 = the baseline; 6200/5200/4200 for the
 * reduced-RPM study).
 */
SystemConfig makeSaSystem(workload::Commercial kind,
                          std::uint32_t actuators,
                          std::uint32_t rpm = 7200);

/** A RAID-0 array of @p disks drives of the given spec (Section 7.3). */
SystemConfig makeRaid0System(const std::string &name,
                             const disk::DriveSpec &drive,
                             std::uint32_t disks,
                             std::uint32_t stripe_sectors = 128);

/** Everything a bench needs from one simulation run. */
struct RunResult
{
    std::string system;
    std::uint64_t requests = 0;
    std::uint64_t completions = 0;
    double wallSeconds = 0.0;

    stats::Histogram responseHist = stats::makeResponseHistogram();
    stats::Histogram rotHist = stats::makeRotLatencyHistogram();
    double meanResponseMs = 0.0;
    double p90ResponseMs = 0.0;
    double p99ResponseMs = 0.0;
    double meanRotMs = 0.0;

    power::PowerBreakdown power;

    /** Aggregated drive counters. */
    std::uint64_t cacheHits = 0;
    std::uint64_t mediaAccesses = 0;
    std::uint64_t mediaRetries = 0; ///< injected ECC re-reads
    std::uint64_t hardErrors = 0;   ///< retry budget exhausted
    double nonzeroSeekFraction = 0.0;
    double throughputIops = 0.0;

    /**
     * Telemetry products, populated only when the run was traced.
     * The trace is shared so RunResult stays cheap to copy (sweep
     * slots move results around); spans ride inside the result, so
     * the SweepRunner's index-ordered slots make any merge of traced
     * runs deterministic at every IDP_THREADS.
     */
    std::shared_ptr<const telemetry::TraceData> trace;
    std::vector<telemetry::MetricSample> metrics;
};

/** Run @p trace against @p config to completion (open loop).
 *  Tracing follows the environment (IDP_TRACE / IDP_TRACE_SAMPLE). */
RunResult runTrace(const workload::Trace &trace,
                   const SystemConfig &config);

/** Same, with explicit tracing control (benches, tests). */
RunResult runTrace(const workload::Trace &trace,
                   const SystemConfig &config,
                   const telemetry::TraceOptions &trace_options);

/**
 * Environment-driven scale factor for bench run lengths: IDP_SCALE
 * multiplies request counts (default 1.0, min 0.01). IDP_REQUESTS, if
 * set, overrides the request count outright.
 */
std::uint64_t benchRequestCount(std::uint64_t default_requests);

/**
 * Environment override helpers shared by benches and the serving
 * front end (IDP_SERVE_* knobs): parse $name as a positive integer /
 * positive double, returning @p def when unset or malformed.
 */
std::uint64_t envOverrideU64(const char *name, std::uint64_t def);
double envOverrideDouble(const char *name, double def);

} // namespace core
} // namespace idp

#endif // IDP_CORE_EXPERIMENT_HH
