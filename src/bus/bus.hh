/**
 * @file
 * Host-interconnect (bus/controller) model.
 *
 * DiskSim-style systems place controllers and buses between the host
 * and the drives; data movement occupies a channel for
 * bytes / bandwidth seconds plus a per-transfer command overhead.
 * A Bus owns one or more channels (a multi-lane HBA or several SCSI
 * strings); each transfer is dispatched to the least-backlogged
 * channel and channels drain FIFO.
 *
 * The storage array uses a Bus optionally: writes pay their host->
 * drive data transfer before reaching the disk, reads pay drive->host
 * on completion. For modern point-to-point links (SATA) the default
 * bandwidth makes this nearly invisible, exactly as in the paper —
 * which assumes "the data channel provides sufficient bandwidth" —
 * but the model lets the assumption be *checked* rather than taken.
 */

#ifndef IDP_BUS_BUS_HH
#define IDP_BUS_BUS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "telemetry/telemetry.hh"

namespace idp {
namespace bus {

/** Bus configuration. */
struct BusParams
{
    /** Per-channel bandwidth, MB/s (SATA 3.0 Gb/s era: ~300). */
    double bandwidthMBps = 300.0;
    /** Independent channels (lanes / strings). */
    std::uint32_t channels = 1;
    /** Per-transfer command/arbitration overhead, ms. */
    double perTransferOverheadMs = 0.01;
};

/** Aggregate bus statistics. */
struct BusStats
{
    std::uint64_t transfers = 0;
    std::uint64_t bytesMoved = 0;
    sim::Tick busyTicks = 0;  ///< sum over channels
    sim::Tick queueTicks = 0; ///< time transfers waited for a channel

    double
    meanQueueMs() const
    {
        return transfers
            ? sim::ticksToMs(queueTicks) /
                static_cast<double>(transfers)
            : 0.0;
    }
};

/**
 * A multi-channel store-and-forward bus.
 *
 * transfer() enqueues a data movement and invokes the callback when
 * the movement completes. Transfers assigned to one channel complete
 * in FIFO order.
 */
class Bus
{
  public:
    Bus(sim::Simulator &simul, const BusParams &params);

    Bus(const Bus &) = delete;
    Bus &operator=(const Bus &) = delete;

    /** Move @p bytes; @p done fires at completion time. */
    void transfer(std::uint64_t bytes, std::function<void()> done);

    /**
     * Same, tagging the movement with the request id it serves so
     * telemetry can attribute the bus span.
     */
    void transfer(std::uint64_t bytes, std::uint64_t request_id,
                  std::function<void()> done);

    /**
     * Book a transfer and return its completion tick without
     * scheduling any event. The PDES engine uses this for writes whose
     * delivery lands beyond the current synchronization horizon: the
     * engine queues the delivery into the target drive's inbox itself,
     * so an event on this calendar would fire a round too late.
     * Channel accounting, stats and telemetry match transfer() exactly.
     */
    sim::Tick transferBooked(std::uint64_t bytes,
                             std::uint64_t request_id);

    /** Duration one transfer of @p bytes occupies a channel. */
    sim::Tick transferTicks(std::uint64_t bytes) const;

    /** transferTicks for a parameter set, without a Bus instance —
     *  the PDES lookahead derivation needs the minimum (one-sector)
     *  transfer latency before any simulator exists. */
    static sim::Tick minTransferTicks(const BusParams &params,
                                      std::uint64_t bytes);

    /** Utilization of the whole bus over the observed horizon. */
    double utilization() const;

    const BusStats &stats() const { return stats_; }
    const BusParams &params() const { return params_; }

  private:
    sim::Simulator &sim_;
    BusParams params_;
    /** Earliest time each channel frees up. */
    std::vector<sim::Tick> channelFreeAt_;
    BusStats stats_;
    /** Registry handles (null when no registry is installed). */
    telemetry::Counter *ctrTransfers_ = nullptr;
    telemetry::Counter *ctrBytes_ = nullptr;
};

} // namespace bus
} // namespace idp

#endif // IDP_BUS_BUS_HH
