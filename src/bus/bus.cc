#include "bus/bus.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace idp {
namespace bus {

Bus::Bus(sim::Simulator &simul, const BusParams &params)
    : sim_(simul), params_(params)
{
    sim::simAssert(params.bandwidthMBps > 0.0,
                   "bus: bandwidth must be positive");
    sim::simAssert(params.channels >= 1, "bus: needs a channel");
    sim::simAssert(params.perTransferOverheadMs >= 0.0,
                   "bus: negative overhead");
    channelFreeAt_.assign(params.channels, 0);
    ctrTransfers_ = telemetry::counterHandle("bus.transfers");
    ctrBytes_ = telemetry::counterHandle("bus.bytes_moved");
}

sim::Tick
Bus::minTransferTicks(const BusParams &params, std::uint64_t bytes)
{
    const double secs =
        static_cast<double>(bytes) / (params.bandwidthMBps * 1e6);
    return sim::secondsToTicks(secs) +
        sim::msToTicks(params.perTransferOverheadMs);
}

sim::Tick
Bus::transferTicks(std::uint64_t bytes) const
{
    return minTransferTicks(params_, bytes);
}

void
Bus::transfer(std::uint64_t bytes, std::function<void()> done)
{
    transfer(bytes, 0, std::move(done));
}

sim::Tick
Bus::transferBooked(std::uint64_t bytes, std::uint64_t request_id)
{
    const sim::Tick now = sim_.now();
    // Least-backlogged channel; FIFO within the channel falls out of
    // the monotone free-at bookkeeping.
    auto it = std::min_element(channelFreeAt_.begin(),
                               channelFreeAt_.end());
    const sim::Tick start = std::max(now, *it);
    const sim::Tick duration = transferTicks(bytes);
    const sim::Tick end = start + duration;
    *it = end;

    ++stats_.transfers;
    stats_.bytesMoved += bytes;
    stats_.busyTicks += duration;
    stats_.queueTicks += start - now;
    telemetry::bump(ctrTransfers_);
    telemetry::bump(ctrBytes_, bytes);
    // Span covers channel wait plus the movement itself.
    telemetry::emitSpan(request_id, telemetry::SpanKind::Bus, now, end);
    return end;
}

void
Bus::transfer(std::uint64_t bytes, std::uint64_t request_id,
              std::function<void()> done)
{
    const sim::Tick end = transferBooked(bytes, request_id);
    sim_.schedule(end, std::move(done));
}

double
Bus::utilization() const
{
    const sim::Tick horizon = sim_.now();
    if (horizon == 0)
        return 0.0;
    return static_cast<double>(stats_.busyTicks) /
        static_cast<double>(horizon * params_.channels);
}

} // namespace bus
} // namespace idp
