#include "cost/cost_model.hh"

#include "sim/logging.hh"

namespace idp {
namespace cost {

std::uint32_t
ComponentCost::units(std::uint32_t actuators) const
{
    sim::simAssert(actuators >= 1, "cost: actuators must be >= 1");
    return fixedCount + perActuator * actuators +
        perExtraActuator * (actuators - 1);
}

PriceRange
ComponentCost::costFor(std::uint32_t actuators) const
{
    return unitPrice.scaled(static_cast<double>(units(actuators)));
}

const std::vector<ComponentCost> &
table9Components()
{
    // Table 9(a), dollars, four-platter drive. Counts are chosen so
    // the conventional / 2-actuator / 4-actuator columns reproduce the
    // paper's rows exactly (e.g. heads: 8 per actuator at $3 -> 24,
    // 48, 96; motor driver: $3.5-4 base + $1.5-2 per extra actuator
    // -> 3.5-4, 5-6, 8-10).
    static const std::vector<ComponentCost> components = {
        {"Media", {6.0, 7.0}, 4, 0, 0},
        {"Spindle Motor", {5.0, 10.0}, 1, 0, 0},
        {"Voice-Coil Motor", {1.0, 2.0}, 0, 1, 0},
        {"Head Suspension", {0.50, 0.90}, 0, 4, 0},
        {"Head", {3.0, 3.0}, 0, 8, 0},
        {"Pivot Bearing", {3.0, 3.0}, 0, 1, 0},
        {"Disk Controller", {4.0, 5.0}, 1, 0, 0},
        {"Motor Driver", {3.5, 4.0}, 1, 0, 0},
        {"Motor Driver (extra channel)", {1.5, 2.0}, 0, 0, 1},
        {"Preamplifier", {1.2, 1.2}, 0, 1, 0},
    };
    return components;
}

PriceRange
driveCost(std::uint32_t actuators)
{
    PriceRange total;
    for (const auto &component : table9Components())
        total = total.plus(component.costFor(actuators));
    return total;
}

PriceRange
IsoPerfConfig::totalCost() const
{
    return driveCost(actuatorsPerDrive)
        .scaled(static_cast<double>(drives));
}

const std::vector<IsoPerfConfig> &
figure9Configs()
{
    static const std::vector<IsoPerfConfig> configs = {
        {"4 Conventional Disk Drives", 4, 1},
        {"2 2-Actuator Disk Drives", 2, 2},
        {"1 4-Actuator Disk Drive", 1, 4},
    };
    return configs;
}

} // namespace cost
} // namespace idp
