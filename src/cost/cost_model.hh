/**
 * @file
 * Component-cost model for intra-disk parallel drives (Section 9).
 *
 * Encodes Table 9(a): per-component volume prices the authors obtained
 * from disk-industry suppliers (US Fuji Electric, Nidec, H2W,
 * Hutchinson, Hitachi Metals, NMB, STMicroelectronics), with low/high
 * ranges, and how each component's count scales with the actuator
 * count in a four-platter drive. Figure 9(b) compares the material
 * cost of iso-performance configurations: 4 conventional drives vs
 * 2 dual-actuator drives vs 1 quad-actuator drive.
 */

#ifndef IDP_COST_COST_MODEL_HH
#define IDP_COST_COST_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace idp {
namespace cost {

/** Closed price interval in dollars. */
struct PriceRange
{
    double lo = 0.0;
    double hi = 0.0;

    double mid() const { return (lo + hi) / 2.0; }

    PriceRange
    scaled(double k) const
    {
        return {lo * k, hi * k};
    }

    PriceRange
    plus(const PriceRange &o) const
    {
        return {lo + o.lo, hi + o.hi};
    }
};

/**
 * One Table 9(a) component row.
 *
 * Unit count in an n-actuator, 4-platter drive:
 *   units(n) = fixedCount + perActuator * n + perExtraActuator * (n-1)
 *
 * Media and spindle are fixed; heads/suspensions/pivots/VCMs/preamps
 * replicate per actuator; the motor driver has a base part plus a
 * cheaper incremental channel per extra actuator (which is exactly how
 * the paper's 2- and 4-actuator columns work out).
 */
struct ComponentCost
{
    std::string name;
    PriceRange unitPrice;
    std::uint32_t fixedCount = 0;
    std::uint32_t perActuator = 0;
    std::uint32_t perExtraActuator = 0;

    std::uint32_t units(std::uint32_t actuators) const;
    PriceRange costFor(std::uint32_t actuators) const;
};

/** The Table 9(a) component list. */
const std::vector<ComponentCost> &table9Components();

/** Total material cost of a drive with @p actuators actuators. */
PriceRange driveCost(std::uint32_t actuators);

/** One Figure 9(b) iso-performance configuration. */
struct IsoPerfConfig
{
    std::string name;
    std::uint32_t drives = 1;
    std::uint32_t actuatorsPerDrive = 1;

    PriceRange totalCost() const;
};

/**
 * The three iso-performance configurations of Figure 9(b): 4
 * conventional drives, 2 dual-actuator drives, 1 quad-actuator drive
 * (equivalence established by the Section 7.3 array experiments).
 */
const std::vector<IsoPerfConfig> &figure9Configs();

} // namespace cost
} // namespace idp

#endif // IDP_COST_COST_MODEL_HH
