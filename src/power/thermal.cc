#include "power/thermal.hh"

#include "sim/logging.hh"

namespace idp {
namespace power {

ThermalModel::ThermalModel(const ThermalParams &params)
    : params_(params)
{
    sim::simAssert(params.resistanceCPerW > 0.0,
                   "thermal: resistance must be positive");
    sim::simAssert(params.maxOperatingC > params.ambientC,
                   "thermal: envelope below ambient");
}

double
ThermalModel::temperatureC(double dissipated_w) const
{
    sim::simAssert(dissipated_w >= 0.0, "thermal: negative power");
    return params_.ambientC + params_.resistanceCPerW * dissipated_w;
}

double
ThermalModel::powerBudgetW() const
{
    return (params_.maxOperatingC - params_.ambientC) /
        params_.resistanceCPerW;
}

bool
ThermalModel::withinEnvelope(double dissipated_w) const
{
    return temperatureC(dissipated_w) <= params_.maxOperatingC;
}

double
ThermalModel::peakTemperatureC(const PowerParams &power_params) const
{
    const PowerModel model(power_params);
    return temperatureC(model.peakW());
}

bool
ThermalModel::feasible(const PowerParams &power_params) const
{
    const PowerModel model(power_params);
    return withinEnvelope(model.peakW());
}

std::uint32_t
ThermalModel::maxFeasibleRpm(PowerParams power_params,
                             std::uint32_t max_rpm) const
{
    // Peak power is monotone in RPM, so binary-search the boundary.
    std::uint32_t lo = 1, hi = max_rpm, best = 0;
    while (lo <= hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        power_params.rpm = mid;
        if (feasible(power_params)) {
            best = mid;
            lo = mid + 1;
        } else {
            if (mid == 0)
                break;
            hi = mid - 1;
        }
    }
    return best;
}

} // namespace power
} // namespace idp
