/**
 * @file
 * Online energy governor: time-varying RPM/actuator control under a
 * latency SLO.
 *
 * The paper's energy study (Figures 6/7) is a static sweep over fixed
 * RPM points; this module closes the loop the way Behzadnia et al.
 * (PAPERS.md) argue for: a per-drive controller observes the live
 * workload over sliding windows — busy fraction from the drive's mode
 * tracker, tail latency from the completion stream — and actuates the
 * two power knobs the mech layer models with real transition costs:
 *
 *   - spindle speed (DiskDrive::requestRpm: drain + rpmShiftMs ramp
 *     during which the drive serves nothing), and
 *   - actuator parking (DiskDrive::parkArm/unparkArm: parked arms are
 *     excluded from dispatch and shed their servo-hold power).
 *
 * Control law (evaluated every windowMs on the coordinator calendar;
 * under the dynamic-horizon engine every decision tick caps the
 * round's horizon, so governed runs stay PDES-legal and byte-exact):
 *
 *   overloaded  := window p99 > sloP99Ms  OR  busy > busyHigh
 *   underloaded := window p99 < guard * sloP99Ms AND busy < busyLow
 *
 *   overloaded  -> unpark everything and jump straight back to full
 *                  speed (race-to-SLO; immediate, no dwell — a
 *                  staircase climb would pay one served-nothing ramp
 *                  per level, so jumping bounds the breach mass at a
 *                  single ramp)
 *   underloaded -> after minDwellMs since the last change, step one
 *                  RPM level down and park spare arms beyond
 *                  parkKeepArms
 *
 * The asymmetric dwell is the hysteresis: recovery is instant, savings
 * are earned slowly, so a bursty workload cannot make the governor
 * thrash through costly ramps.
 *
 * Transitions poison their own evidence: requests that queued behind
 * a ramp complete with the ramp's latency folded in, so the window
 * right after a speed change always looks like an SLO breach. Each
 * drive therefore gets a settling period (one ramp plus three control
 * windows) after a transition during which its decisions are
 * suspended — the breach the governor caused is not a reason to undo
 * the step. Sustained real overload outlives the settle and still
 * triggers the climb.
 *
 * Control ticks ride the calendar as cancellable events; when the
 * system drains (all drives idle, no transitions in flight, no fresh
 * completions) the governor goes dormant — even above the bottom
 * level, so a finished run is not kept alive billing phantom idle
 * energy — and the array re-arms it on the next submit.
 */

#ifndef IDP_POWER_GOVERNOR_HH
#define IDP_POWER_GOVERNOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "stats/mode_tracker.hh"
#include "telemetry/telemetry.hh"

namespace idp {
namespace disk {
class DiskDrive;
} // namespace disk

namespace power {

/** Governor configuration (ArrayParams::governor). */
struct GovernorParams
{
    /** Master switch; off keeps every existing run byte-identical. */
    bool enabled = false;

    /** Control-loop evaluation period, ms. */
    double windowMs = 250.0;

    /** Latency SLO: the completion window's p99 must stay below. */
    double sloP99Ms = 50.0;

    /** Step down only while window p99 < guardFraction * sloP99Ms —
     *  the headroom margin that absorbs the next burst's onset. */
    double guardFraction = 0.5;

    /** Busy-fraction thresholds (1 - idle share of the window). */
    double busyHigh = 0.50;
    double busyLow = 0.20;

    /** Minimum dwell between *downward* transitions on one drive, ms
     *  (upward SLO-protection steps are never delayed). */
    double minDwellMs = 2000.0;

    /**
     * Spindle-speed levels, descending; levels[0] should be the
     * drive's nominal speed (it is prepended if missing). The
     * defaults are the paper's static study points.
     */
    std::vector<std::uint32_t> rpmLevels{7200, 6200, 5200, 4200};

    /**
     * When stepping below the top level, park idle arms down to this
     * many serviceable ones (0 = never park). Parking only pays off
     * when PowerParams::actuatorIdleW > 0.
     */
    std::uint32_t parkKeepArms = 0;

    /** Completion-latency sliding window capacity (p99 estimator). */
    std::size_t latencyRing = 1024;
};

/**
 * IDP_GOVERNOR* environment overrides:
 *   IDP_GOVERNOR=0/1           force-disable / force-enable
 *   IDP_GOVERNOR_WINDOW_MS     control period
 *   IDP_GOVERNOR_SLO_MS        latency SLO
 *   IDP_GOVERNOR_DWELL_MS      downward dwell
 *   IDP_GOVERNOR_PARK          parkKeepArms
 */
GovernorParams applyGovernorEnv(GovernorParams params);

/** Decision counters (also exported as telemetry counters). */
struct GovernorStats
{
    std::uint64_t ticks = 0;
    std::uint64_t stepUps = 0;
    std::uint64_t stepDowns = 0;
    std::uint64_t parks = 0;
    std::uint64_t unparks = 0;
};

/**
 * One governor instance per StorageArray, controlling every member
 * drive independently on the shared calendar. All buffers are
 * pre-allocated in the constructor; control ticks and completion
 * ingestion are allocation-free in steady state.
 */
class Governor
{
  public:
    Governor(sim::Simulator &simul, const GovernorParams &params,
             std::vector<disk::DiskDrive *> drives);

    Governor(const Governor &) = delete;
    Governor &operator=(const Governor &) = delete;

    ~Governor();

    /** Feed one logical completion latency into the sliding window.
     *  Called by the array on every response sample. */
    void onCompletion(double response_ms);

    /** A request entered the array: re-arm the control tick if the
     *  governor had gone dormant on an idle system. */
    void noteActivity();

    /** Cancel the outstanding control tick (end of run). */
    void stop();

    const GovernorStats &stats() const { return stats_; }

    /** Last evaluated window p99 (ms; 0 when the window was empty). */
    double windowP99Ms() const { return windowP99_; }

    /** Current RPM level index of drive @p i (0 = top). */
    std::size_t levelIndex(std::size_t i) const
    {
        return perDrive_[i].levelIdx;
    }

    const std::vector<std::uint32_t> &levels() const { return levels_; }

  private:
    struct DriveState
    {
        stats::ModeTimes lastModes;
        sim::Tick lastChange = 0;
        std::size_t levelIdx = 0;
    };

    void armTick();
    void controlTick();
    void decide(std::size_t i, double busy, double p99, sim::Tick now);
    void parkSpares(std::size_t i);
    void unparkAll(std::size_t i);
    double computeWindowP99();

    sim::Simulator &sim_;
    GovernorParams params_;
    std::vector<disk::DiskDrive *> drives_;
    std::vector<std::uint32_t> levels_;
    std::vector<DriveState> perDrive_;

    /** Completion-latency ring (ms) + reusable p99 scratch. */
    std::vector<double> ring_;
    std::size_t ringPos_ = 0;
    std::uint64_t samplesSinceTick_ = 0;
    std::vector<double> scratch_;

    sim::Tick windowTicks_ = 0;
    sim::Tick dwellTicks_ = 0;
    /** Post-transition evidence blackout: ramp + three windows. */
    sim::Tick settleTicks_ = 0;
    sim::EventId tickEv_ = sim::kInvalidEventId;
    bool dormant_ = false;
    bool stopped_ = false;
    double windowP99_ = 0.0;
    GovernorStats stats_;

    telemetry::Counter *ctrStepUps_ = nullptr;
    telemetry::Counter *ctrStepDowns_ = nullptr;
    telemetry::Counter *ctrParks_ = nullptr;
    telemetry::Counter *ctrUnparks_ = nullptr;
};

} // namespace power
} // namespace idp

#endif // IDP_POWER_GOVERNOR_HH
