/**
 * @file
 * Analytic disk power model.
 *
 * Follows the scaling laws the paper relies on (Sato et al. [18] /
 * SODA [44]): spindle power grows with platter diameter to the ~4.6th
 * power, roughly cubically with RPM (we use exponent 2.8), and
 * linearly with platter count. Voice-coil power scales with platter
 * diameter (heavier arms sweep larger radii).
 *
 * Calibration anchors (see Table 1 of the paper):
 *  - Seagate Barracuda ES (3.7 in platters, 7200 RPM, 4 platters):
 *    ~9.3 W idle, ~13 W with one VCM seeking.
 *  - Hypothetical 4-actuator extension: ~34 W with all four VCMs
 *    active (the paper's worst-case projection).
 * The default coefficients below reproduce these anchors exactly.
 */

#ifndef IDP_POWER_POWER_MODEL_HH
#define IDP_POWER_POWER_MODEL_HH

#include <cstdint>
#include <vector>

#include "stats/mode_tracker.hh"

namespace idp {
namespace power {

/** Electro-mechanical parameters feeding the power model. */
struct PowerParams
{
    double platterDiameterIn = 3.7; ///< platter diameter, inches
    std::uint32_t rpm = 7200;
    std::uint32_t platters = 4;
    std::uint32_t actuators = 1;

    /** Always-on controller/channel electronics, watts. */
    double electronicsW = 2.5;
    /** Incremental data-channel power while a head transfers, watts. */
    double channelActiveW = 1.7;
    /**
     * Per-actuator servo/hold power while an arm is loaded (unparked),
     * watts. Parked arms shed it — the saving the governor's actuator
     * parking buys. 0 (the default) disables the term entirely, which
     * keeps historical energy figures bit-identical.
     */
    double actuatorIdleW = 0.0;

    /** Spindle coefficient: spm = coef * D^4.6 * (rpm/1000)^2.8 * P. */
    double spmCoef = 1.6439e-5;
    double spmDiameterExp = 4.6;
    double spmRpmExp = 2.8;

    /** VCM average seek power = coef * D^2.5 (per active actuator). */
    double vcmCoefAvg = 0.1405;
    /** VCM worst-case power = coef * D^2.5 (Table 1 projection). */
    double vcmCoefPeak = 0.2345;
    double vcmDiameterExp = 2.5;

    /**
     * Era efficiency multiplier (>= 1) on spindle power. Modern drives
     * use 1.0; 1970s–80s motors and drivers were far less efficient,
     * which is how the IBM 3380's kilowatts arise from the same law.
     */
    double eraFactor = 1.0;
};

/** Energy/average-power breakdown over the four operating modes. */
struct PowerBreakdown
{
    /** Energy per mode, joules, indexed by stats::DiskMode. */
    double energyJ[stats::kNumDiskModes] = {0, 0, 0, 0};
    double totalEnergyJ = 0.0;
    double wallSeconds = 0.0;

    /** Average power contribution of a mode over the whole run, W. */
    double modeAvgW(stats::DiskMode m) const;
    /** Total average power, watts. */
    double totalAvgW() const;
    /** Accumulate another breakdown (aggregate an array). */
    void merge(const PowerBreakdown &other);
};

/**
 * Computes static mode powers and integrates ModeTimes into energy.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerParams &params);

    /** Spindle motor power while spinning, watts. */
    double spindleW() const { return spindleW_; }

    /** One actuator's average power while seeking, watts. */
    double vcmSeekW() const { return vcmSeekW_; }

    /** One actuator's worst-case power, watts. */
    double vcmPeakW() const { return vcmPeakW_; }

    /** Power when spinning with no request in service, watts. */
    double idleW() const { return spindleW_ + params_.electronicsW; }

    /** Power while only waiting on rotation (arms parked), watts. */
    double rotWaitW() const { return idleW(); }

    /** Power with exactly one arm in motion, watts. */
    double seekW() const { return idleW() + vcmSeekW_; }

    /** Power while transferring (channel active), watts. */
    double transferW() const { return idleW() + params_.channelActiveW; }

    /**
     * Worst-case power: all actuators seeking at peak VCM power
     * simultaneously — the Table 1 "Power/box" projection scenario
     * (the paper's 34 W figure for the 4-actuator drive).
     */
    double peakW() const;

    /** Integrate measured mode times into energy, per mode. */
    PowerBreakdown integrate(const stats::ModeTimes &times) const;

    /**
     * Integrate a per-RPM-segment breakdown (ModeTracker::
     * finishSegments): each segment is priced with the spindle law
     * evaluated at that segment's speed (rpm 0 = this model's nominal
     * speed), and the segments' energies and wall times sum. A
     * single-segment run integrates bit-identically to integrate().
     */
    PowerBreakdown
    integrateSegments(const std::vector<stats::RpmSegment> &segs) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
    double spindleW_;
    double vcmSeekW_;
    double vcmPeakW_;
};

} // namespace power
} // namespace idp

#endif // IDP_POWER_POWER_MODEL_HH
