#include "power/governor.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "disk/disk_drive.hh"
#include "sim/logging.hh"

namespace idp {
namespace power {

namespace {

double
envDouble(const char *name, double fallback)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || v <= 0.0)
        sim::fatal(std::string(name) + ": expected a positive number, got \"" +
                   env + "\"");
    return v;
}

} // namespace

GovernorParams
applyGovernorEnv(GovernorParams params)
{
    if (const char *env = std::getenv("IDP_GOVERNOR")) {
        const std::string v(env);
        if (v == "0" || v == "off")
            params.enabled = false;
        else if (v == "1" || v == "on")
            params.enabled = true;
        else
            sim::fatal(std::string("IDP_GOVERNOR: expected 0/1, got \"") +
                       env + "\"");
    }
    params.windowMs = envDouble("IDP_GOVERNOR_WINDOW_MS", params.windowMs);
    params.sloP99Ms = envDouble("IDP_GOVERNOR_SLO_MS", params.sloP99Ms);
    params.minDwellMs = envDouble("IDP_GOVERNOR_DWELL_MS", params.minDwellMs);
    if (const char *env = std::getenv("IDP_GOVERNOR_PARK")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0')
            sim::fatal(std::string(
                           "IDP_GOVERNOR_PARK: expected an arm count, got \"") +
                       env + "\"");
        params.parkKeepArms = static_cast<std::uint32_t>(v);
    }
    return params;
}

Governor::Governor(sim::Simulator &simul, const GovernorParams &params,
                   std::vector<disk::DiskDrive *> drives)
    : sim_(simul), params_(params), drives_(std::move(drives))
{
    sim::simAssert(!drives_.empty(), "governor: no drives to control");
    sim::simAssert(params_.windowMs > 0.0, "governor: windowMs must be > 0");
    sim::simAssert(params_.sloP99Ms > 0.0, "governor: sloP99Ms must be > 0");
    sim::simAssert(params_.latencyRing > 0, "governor: empty latency ring");

    // Per-drive level table: descending, with the drive's nominal
    // speed prepended when the configured levels omit it (the governor
    // must always be able to return to full speed).
    levels_ = params_.rpmLevels;
    const std::uint32_t nominal = drives_.front()->spec().rpm;
    if (std::find(levels_.begin(), levels_.end(), nominal) == levels_.end())
        levels_.push_back(nominal);
    std::sort(levels_.begin(), levels_.end(),
              [](std::uint32_t a, std::uint32_t b) { return a > b; });
    sim::simAssert(levels_.front() >= nominal,
                   "governor: rpmLevels exceed the drive's nominal speed");

    perDrive_.resize(drives_.size());
    const sim::Tick now = sim_.now();
    for (std::size_t i = 0; i < drives_.size(); ++i) {
        perDrive_[i].lastModes = drives_[i]->modeTimesSnapshot();
        perDrive_[i].lastChange = now;
        // Start at the level matching the drive's current speed.
        std::size_t idx = 0;
        while (idx + 1 < levels_.size() &&
               levels_[idx] != drives_[i]->currentRpm())
            ++idx;
        perDrive_[i].levelIdx = idx;
    }

    ring_.assign(params_.latencyRing, 0.0);
    ringPos_ = 0;
    scratch_.reserve(params_.latencyRing);

    windowTicks_ = sim::msToTicks(params_.windowMs);
    dwellTicks_ = sim::msToTicks(params_.minDwellMs);
    // Ramp + 3 windows: the first tick evaluated after the blackout
    // covers a window beginning >= 2 windows past ramp end, past the
    // completions of whatever queued behind the ramp.
    settleTicks_ = 3 * windowTicks_ +
        sim::msToTicks(drives_.front()->spec().rpmShiftMs);

    ctrStepUps_ = telemetry::counterHandle("governor.step_ups");
    ctrStepDowns_ = telemetry::counterHandle("governor.step_downs");
    ctrParks_ = telemetry::counterHandle("governor.parks");
    ctrUnparks_ = telemetry::counterHandle("governor.unparks");

    armTick();
}

Governor::~Governor()
{
    stop();
}

void
Governor::onCompletion(double response_ms)
{
    ring_[ringPos_] = response_ms;
    ringPos_ = (ringPos_ + 1) % ring_.size();
    ++samplesSinceTick_;
}

void
Governor::noteActivity()
{
    if (dormant_ && !stopped_) {
        dormant_ = false;
        armTick();
    }
}

void
Governor::stop()
{
    stopped_ = true;
    if (tickEv_ != sim::kInvalidEventId) {
        sim_.cancel(tickEv_);
        tickEv_ = sim::kInvalidEventId;
    }
}

void
Governor::armTick()
{
    if (stopped_)
        return;
    tickEv_ = sim_.scheduleAfter(windowTicks_, [this] {
        tickEv_ = sim::kInvalidEventId;
        controlTick();
    });
}

double
Governor::computeWindowP99()
{
    const std::size_t n =
        std::min<std::size_t>(samplesSinceTick_, ring_.size());
    if (n == 0)
        return 0.0;
    // Copy the newest n samples into the preallocated scratch and take
    // the p99 via nth_element — O(n), no allocation, no full sort.
    scratch_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t pos = (ringPos_ + ring_.size() - 1 - i) %
            ring_.size();
        scratch_.push_back(ring_[pos]);
    }
    const std::size_t rank = (n * 99) / 100;
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(rank),
                     scratch_.end());
    return scratch_[rank];
}

void
Governor::controlTick()
{
    ++stats_.ticks;
    const sim::Tick now = sim_.now();
    windowP99_ = computeWindowP99();
    const bool had_samples = samplesSinceTick_ != 0;
    samplesSinceTick_ = 0;

    bool any_active = false;
    bool any_shifting = false;

    for (std::size_t i = 0; i < drives_.size(); ++i) {
        disk::DiskDrive *d = drives_[i];
        DriveState &st = perDrive_[i];

        const stats::ModeTimes cur = d->modeTimesSnapshot();
        const stats::ModeTimes win = stats::ModeTimes::delta(cur, st.lastModes);
        st.lastModes = cur;

        if (!d->idle())
            any_active = true;

        // Never retarget a drive mid-transition: an RPM ramp, a
        // spin-down transition, or standby each finish (and re-price)
        // before the next decision can land.
        if (d->rpmShifting() || d->spunDown() || d->spinningDown()) {
            any_shifting = true;
            continue;
        }

        const double busy = win.total == 0
            ? 0.0
            : 1.0 -
                static_cast<double>(
                    win.wall[static_cast<std::size_t>(
                        stats::DiskMode::Idle)]) /
                    static_cast<double>(win.total);

        decide(i, busy, windowP99_, now);
    }

    // Dormancy: with every drive idle and no fresh completions,
    // rescheduling would keep an empty simulation alive forever —
    // and extend a drained run's horizon (billing phantom idle
    // energy) just to walk the remaining descent staircase. Park the
    // loop even above the bottom level; StorageArray::submit re-arms
    // it via noteActivity(), so during a sparse-but-live lull the
    // descent simply stutters along with the traffic.
    if (!any_active && !any_shifting && !had_samples) {
        dormant_ = true;
        return;
    }
    armTick();
}

void
Governor::decide(std::size_t i, double busy, double p99, sim::Tick now)
{
    disk::DiskDrive *d = drives_[i];
    DriveState &st = perDrive_[i];

    // Settling: the window right after a transition measures the
    // queue the ramp itself built up. Suspend decisions until one
    // clean window of evidence has accumulated.
    if (now - st.lastChange < settleTicks_)
        return;

    const bool overloaded =
        (p99 > params_.sloP99Ms) || (busy > params_.busyHigh);
    const bool underloaded = (p99 < params_.guardFraction * params_.sloP99Ms) &&
        (busy < params_.busyLow);

    if (overloaded) {
        // SLO protection: unpark everything and jump straight back
        // to full speed (race-to-SLO). A staircase climb would pay
        // one ramp's worth of served-nothing time per level; jumping
        // bounds the breach mass at a single ramp.
        unparkAll(i);
        if (st.levelIdx > 0) {
            st.levelIdx = 0;
            st.lastChange = now;
            d->requestRpm(levels_[0]);
            ++stats_.stepUps;
            telemetry::bump(ctrStepUps_);
        }
        return;
    }

    if (underloaded && now - st.lastChange >= dwellTicks_) {
        if (st.levelIdx + 1 < levels_.size()) {
            ++st.levelIdx;
            st.lastChange = now;
            d->requestRpm(levels_[st.levelIdx]);
            ++stats_.stepDowns;
            telemetry::bump(ctrStepDowns_);
        }
        if (st.levelIdx > 0)
            parkSpares(i);
    }
}

void
Governor::parkSpares(std::size_t i)
{
    if (params_.parkKeepArms == 0)
        return;
    disk::DiskDrive *d = drives_[i];
    const std::uint32_t arms = d->spec().dash.armAssemblies;
    std::uint32_t serviceable = d->aliveArms() - d->parkedArms();
    // Park idle arms from the highest index down, keeping
    // parkKeepArms serviceable (parkArm itself refuses the last one).
    for (std::uint32_t k = arms; k-- > 0 &&
         serviceable > params_.parkKeepArms;) {
        if (d->armParked(k) || d->armBusy(k))
            continue;
        d->parkArm(k);
        --serviceable;
        ++stats_.parks;
        telemetry::bump(ctrParks_);
    }
}

void
Governor::unparkAll(std::size_t i)
{
    disk::DiskDrive *d = drives_[i];
    if (d->parkedArms() == 0)
        return;
    const std::uint32_t arms = d->spec().dash.armAssemblies;
    for (std::uint32_t k = 0; k < arms; ++k) {
        if (!d->armParked(k))
            continue;
        d->unparkArm(k);
        ++stats_.unparks;
        telemetry::bump(ctrUnparks_);
    }
}

} // namespace power
} // namespace idp
