#include "power/power_model.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace idp {
namespace power {

double
PowerBreakdown::modeAvgW(stats::DiskMode m) const
{
    if (wallSeconds <= 0.0)
        return 0.0;
    return energyJ[static_cast<std::size_t>(m)] / wallSeconds;
}

double
PowerBreakdown::totalAvgW() const
{
    return wallSeconds > 0.0 ? totalEnergyJ / wallSeconds : 0.0;
}

void
PowerBreakdown::merge(const PowerBreakdown &other)
{
    for (std::size_t i = 0; i < stats::kNumDiskModes; ++i)
        energyJ[i] += other.energyJ[i];
    totalEnergyJ += other.totalEnergyJ;
    // Disks in an array run for the same wall time; keep the max so
    // average power of the aggregate divides by the run length once.
    wallSeconds = std::max(wallSeconds, other.wallSeconds);
}

PowerModel::PowerModel(const PowerParams &params) : params_(params)
{
    sim::simAssert(params.platterDiameterIn > 0.0 && params.rpm > 0 &&
                       params.platters > 0 && params.actuators > 0,
                   "power: invalid parameters");
    const double d = params.platterDiameterIn;
    const double krpm = static_cast<double>(params.rpm) / 1000.0;
    spindleW_ = params.spmCoef * std::pow(d, params.spmDiameterExp) *
        std::pow(krpm, params.spmRpmExp) *
        static_cast<double>(params.platters) * params.eraFactor;
    vcmSeekW_ = params.vcmCoefAvg * std::pow(d, params.vcmDiameterExp);
    vcmPeakW_ = params.vcmCoefPeak * std::pow(d, params.vcmDiameterExp);
}

double
PowerModel::peakW() const
{
    return idleW() +
        vcmPeakW_ * static_cast<double>(params_.actuators);
}

PowerBreakdown
PowerModel::integrate(const stats::ModeTimes &times) const
{
    using stats::DiskMode;
    PowerBreakdown out;
    const auto secs = [](sim::Tick t) { return sim::ticksToSeconds(t); };

    const double t_idle = secs(times.wall[static_cast<std::size_t>(
        DiskMode::Idle)]);
    const double t_rot = secs(times.wall[static_cast<std::size_t>(
        DiskMode::RotWait)]);
    const double t_seek = secs(times.wall[static_cast<std::size_t>(
        DiskMode::Seek)]);
    const double t_xfer = secs(times.wall[static_cast<std::size_t>(
        DiskMode::Transfer)]);

    // Baseline (spindle + electronics) energy is attributed to the
    // wall mode; incremental VCM / channel energy goes to the seek and
    // transfer buckets regardless of overlap, so total energy is
    // conserved under concurrency. Standby (spun-down) time pays only
    // the electronics, not the spindle.
    const double base = idleW();
    const double t_standby = secs(times.standbyTicks);
    out.energyJ[static_cast<std::size_t>(DiskMode::Idle)] =
        base * (t_idle - t_standby) +
        params_.electronicsW * t_standby;
    out.energyJ[static_cast<std::size_t>(DiskMode::RotWait)] =
        base * t_rot;
    out.energyJ[static_cast<std::size_t>(DiskMode::Seek)] =
        base * t_seek + vcmSeekW_ * secs(times.vcmSeconds);
    out.energyJ[static_cast<std::size_t>(DiskMode::Transfer)] =
        base * t_xfer +
        params_.channelActiveW * secs(times.channelSeconds);

    if (params_.actuatorIdleW > 0.0) {
        // Servo-hold power of every loaded (unparked) actuator,
        // attributed to the idle bucket: it is paid regardless of the
        // wall mode and saved only by parking.
        const double loaded_secs =
            secs(static_cast<sim::Tick>(params_.actuators) *
                 times.total) -
            secs(times.parkedTicks);
        out.energyJ[static_cast<std::size_t>(DiskMode::Idle)] +=
            params_.actuatorIdleW * loaded_secs;
    }

    for (double e : out.energyJ)
        out.totalEnergyJ += e;
    out.wallSeconds = secs(times.total);
    return out;
}

PowerBreakdown
PowerModel::integrateSegments(
    const std::vector<stats::RpmSegment> &segs) const
{
    PowerBreakdown out;
    for (const auto &seg : segs) {
        PowerBreakdown part;
        if (seg.rpm == 0 || seg.rpm == params_.rpm) {
            part = integrate(seg.times);
        } else {
            PowerParams p = params_;
            p.rpm = seg.rpm;
            part = PowerModel(p).integrate(seg.times);
        }
        // Segments of one drive are consecutive in time, so wall
        // times SUM (unlike PowerBreakdown::merge, whose max is for
        // disks running side by side).
        for (std::size_t i = 0; i < stats::kNumDiskModes; ++i)
            out.energyJ[i] += part.energyJ[i];
        out.totalEnergyJ += part.totalEnergyJ;
        out.wallSeconds += part.wallSeconds;
    }
    return out;
}

} // namespace power
} // namespace idp
