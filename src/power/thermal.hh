/**
 * @file
 * First-order drive thermal model.
 *
 * The paper's motivation leans on Gurumurthi et al. [12]: rotational
 * speeds cannot keep scaling because drive temperature tracks
 * dissipated power, and reliability collapses past the thermal
 * envelope [16]. This model captures that argument at the level the
 * paper uses it: steady-state drive temperature is ambient plus
 * thermal resistance times dissipated power, and a design point is
 * feasible only if its worst-case temperature stays inside the
 * envelope. The companion bench (motivation_rpm_thermal) shows why
 * "just spin faster" fails where "add an actuator" fits.
 */

#ifndef IDP_POWER_THERMAL_HH
#define IDP_POWER_THERMAL_HH

#include "power/power_model.hh"

namespace idp {
namespace power {

/** Thermal environment and envelope. */
struct ThermalParams
{
    /** Air temperature at the drive, deg C (dense server bay). */
    double ambientC = 40.0;
    /** Case-to-ambient thermal resistance, deg C per watt. */
    double resistanceCPerW = 1.1;
    /** Maximum reliable operating temperature, deg C. */
    double maxOperatingC = 60.0;
};

/** Steady-state thermal evaluation of a drive design point. */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalParams &params);

    /** Steady-state drive temperature at @p dissipated_w watts. */
    double temperatureC(double dissipated_w) const;

    /** Watts the envelope allows above ambient. */
    double powerBudgetW() const;

    /** True if @p dissipated_w keeps the drive inside the envelope. */
    bool withinEnvelope(double dissipated_w) const;

    /**
     * Worst-case (peak-power) temperature of a drive described by
     * @p power_params.
     */
    double peakTemperatureC(const PowerParams &power_params) const;

    /** Envelope check for the drive's worst case. */
    bool feasible(const PowerParams &power_params) const;

    /**
     * Highest RPM (searched to 1 RPM granularity, up to @p max_rpm)
     * at which the drive's worst case still fits the envelope;
     * 0 if even the lowest searched speed does not fit.
     */
    std::uint32_t maxFeasibleRpm(PowerParams power_params,
                                 std::uint32_t max_rpm = 30000) const;

    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
};

} // namespace power
} // namespace idp

#endif // IDP_POWER_THERMAL_HH
