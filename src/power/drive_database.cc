#include "power/drive_database.hh"

namespace idp {
namespace power {

namespace {

std::vector<HistoricalDrive>
buildTable1()
{
    std::vector<HistoricalDrive> drives;

    // IBM 3380 AK4 — 14-inch mainframe drive, 4 actuators, 3600 RPM.
    // The published 6,600 W is for the whole box (multiple HDAs plus
    // 1980-era motor drivers); eraFactor folds that inefficiency in.
    {
        HistoricalDrive d;
        d.name = "IBM 3380 AK4";
        d.era = "SIGMOD'88";
        d.arealDensityMbIn2 = 14.0;
        d.diameterIn = 14.0;
        d.capacityMB = 7500.0;
        d.actuators = 4;
        d.publishedPowerW = 6600.0;
        d.transferMBs = 3.0;
        d.priceLoPerMB = 10.0;
        d.priceHiPerMB = 18.0;
        d.powerParams.platterDiameterIn = 14.0;
        d.powerParams.rpm = 3600;
        d.powerParams.platters = 9;
        d.powerParams.actuators = 4;
        d.powerParams.electronicsW = 150.0; // discrete-logic era
        d.powerParams.eraFactor = 5.5;
        drives.push_back(d);
    }

    // Fujitsu M2361A "Eagle" — 10.5-inch minicomputer drive.
    {
        HistoricalDrive d;
        d.name = "Fujitsu M2361A";
        d.era = "SIGMOD'88";
        d.arealDensityMbIn2 = 12.0;
        d.diameterIn = 10.5;
        d.capacityMB = 600.0;
        d.actuators = 1;
        d.publishedPowerW = 640.0;
        d.transferMBs = 2.5;
        d.priceLoPerMB = 17.0;
        d.priceHiPerMB = 20.0;
        d.powerParams.platterDiameterIn = 10.5;
        d.powerParams.rpm = 3600;
        d.powerParams.platters = 10;
        d.powerParams.actuators = 1;
        d.powerParams.electronicsW = 60.0;
        d.powerParams.eraFactor = 1.8;
        drives.push_back(d);
    }

    // Conner CP3100 — 3.5-inch PC drive, the RAID paper's building
    // block. 3575 RPM, 4 platters (per the paper's comparison).
    {
        HistoricalDrive d;
        d.name = "Conner CP3100";
        d.era = "SIGMOD'88";
        d.arealDensityMbIn2 = 0.0; // not reported in Table 1
        d.diameterIn = 3.5;
        d.capacityMB = 100.0;
        d.actuators = 1;
        d.publishedPowerW = 10.0;
        d.transferMBs = 1.0;
        d.priceLoPerMB = 7.0;
        d.priceHiPerMB = 10.0;
        d.powerParams.platterDiameterIn = 3.5;
        d.powerParams.rpm = 3575;
        d.powerParams.platters = 4;
        d.powerParams.actuators = 1;
        d.powerParams.electronicsW = 6.0; // late-80s electronics
        d.powerParams.eraFactor = 3.5;
        drives.push_back(d);
    }

    // Seagate Barracuda ES — the paper's modern baseline (HC-SD).
    {
        HistoricalDrive d;
        d.name = "Seagate Barracuda ES";
        d.era = "modern";
        d.arealDensityMbIn2 = 128000.0;
        d.diameterIn = 3.7;
        d.capacityMB = 750000.0;
        d.actuators = 1;
        d.publishedPowerW = 13.0;
        d.transferMBs = 72.0;
        d.priceLoPerMB = 0.00034;
        d.priceHiPerMB = 0.00042;
        d.powerParams.platterDiameterIn = 3.7;
        d.powerParams.rpm = 7200;
        d.powerParams.platters = 4;
        d.powerParams.actuators = 1;
        drives.push_back(d);
    }

    // Hypothetical 4-actuator intra-disk parallel drive: the Barracuda
    // architecture with four independent arm assemblies. The paper's
    // projected worst case (all four VCMs active) is 34 W.
    {
        HistoricalDrive d;
        d.name = "4-Actuator IDP (proj.)";
        d.era = "projection";
        d.arealDensityMbIn2 = 128000.0;
        d.diameterIn = 3.7;
        d.capacityMB = 750000.0;
        d.actuators = 4;
        d.publishedPowerW = 34.0;
        d.transferMBs = 0.0; // "Explored in Section 7"
        d.powerParams.platterDiameterIn = 3.7;
        d.powerParams.rpm = 7200;
        d.powerParams.platters = 4;
        d.powerParams.actuators = 4;
        drives.push_back(d);
    }

    return drives;
}

} // namespace

const std::vector<HistoricalDrive> &
table1Drives()
{
    static const std::vector<HistoricalDrive> drives = buildTable1();
    return drives;
}

double
modeledPeakPowerW(const HistoricalDrive &drive)
{
    PowerModel model(drive.powerParams);
    return model.peakW();
}

double
modeledIdlePowerW(const HistoricalDrive &drive)
{
    PowerModel model(drive.powerParams);
    return model.idleW();
}

} // namespace power
} // namespace idp
