/**
 * @file
 * Historical drive database backing Table 1 of the paper.
 *
 * Each entry carries the published characteristics (areal density,
 * diameter, capacity, actuator count, power, transfer rate, price) of
 * the drives the paper compares — IBM 3380 AK4, Fujitsu M2361A, Conner
 * CP3100, Seagate Barracuda ES — plus the hypothetical 4-actuator
 * intra-disk parallel drive, and the PowerParams needed to *model*
 * each drive's power with the analytic model so the bench can print
 * modeled-vs-published numbers side by side.
 */

#ifndef IDP_POWER_DRIVE_DATABASE_HH
#define IDP_POWER_DRIVE_DATABASE_HH

#include <string>
#include <vector>

#include "power/power_model.hh"

namespace idp {
namespace power {

/** One Table 1 row. */
struct HistoricalDrive
{
    std::string name;
    std::string era; ///< e.g. "SIGMOD'88 RAID paper" or "modern"
    double arealDensityMbIn2 = 0.0;
    double diameterIn = 0.0;
    double capacityMB = 0.0;
    std::uint32_t actuators = 1;
    /** Published "power/box" watts (0 when the paper leaves it open). */
    double publishedPowerW = 0.0;
    /** Published transfer rate, MB/s (0 when not reported). */
    double transferMBs = 0.0;
    /** Published price per MB range, dollars (0 when open). */
    double priceLoPerMB = 0.0;
    double priceHiPerMB = 0.0;
    /** Parameters to model this drive's power analytically. */
    PowerParams powerParams;
};

/** The five Table 1 drives, in the paper's column order. */
const std::vector<HistoricalDrive> &table1Drives();

/** Modeled worst-case power for a Table 1 entry, watts. */
double modeledPeakPowerW(const HistoricalDrive &drive);

/** Modeled idle power, watts. */
double modeledIdlePowerW(const HistoricalDrive &drive);

} // namespace power
} // namespace idp

#endif // IDP_POWER_DRIVE_DATABASE_HH
