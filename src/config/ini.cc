#include "config/ini.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace idp {
namespace config {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

[[noreturn]] void
parseError(std::size_t line_no, const std::string &line,
           const std::string &why)
{
    std::ostringstream msg;
    msg << "config line " << line_no << ": " << why << ": " << line;
    sim::fatal(msg.str());
}

} // namespace

IniFile
IniFile::parse(std::istream &is)
{
    IniFile ini;
    std::string line;
    std::string section;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        // Strip comments (full-line or trailing).
        const std::size_t hash = line.find_first_of("#;");
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const std::string text = trim(line);
        if (text.empty())
            continue;
        if (text.front() == '[') {
            if (text.back() != ']' || text.size() < 3)
                parseError(line_no, text, "malformed section header");
            section = trim(text.substr(1, text.size() - 2));
            // "[ ]" would name the section "", which the serialized
            // form "[]" cannot represent — reject it at the source.
            if (section.empty())
                parseError(line_no, text, "empty section name");
            if (ini.sections_.find(section) == ini.sections_.end())
                ini.sectionOrder_.push_back(section);
            ini.sections_[section]; // create
            continue;
        }
        const std::size_t eq = text.find('=');
        if (eq == std::string::npos)
            parseError(line_no, text, "expected key = value");
        if (section.empty())
            parseError(line_no, text, "key before any [section]");
        const std::string key = trim(text.substr(0, eq));
        const std::string value = trim(text.substr(eq + 1));
        if (key.empty())
            parseError(line_no, text, "empty key");
        Section &sec = ini.sections_[section];
        if (sec.values.count(key))
            parseError(line_no, text, "duplicate key '" + key + "'");
        sec.values[key] = value;
        sec.keyOrder.push_back(key);
    }
    return ini;
}

IniFile
IniFile::parseFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        sim::fatal("cannot open config file: " + path);
    return parse(is);
}

IniFile
IniFile::parseString(const std::string &text)
{
    std::istringstream is(text);
    return parse(is);
}

bool
IniFile::has(const std::string &section, const std::string &key) const
{
    const auto it = sections_.find(section);
    return it != sections_.end() && it->second.values.count(key) > 0;
}

std::string
IniFile::get(const std::string &section, const std::string &key,
             const std::string &fallback) const
{
    const auto it = sections_.find(section);
    if (it == sections_.end())
        return fallback;
    const auto kit = it->second.values.find(key);
    return kit == it->second.values.end() ? fallback : kit->second;
}

double
IniFile::getDouble(const std::string &section, const std::string &key,
                   double fallback) const
{
    if (!has(section, key))
        return fallback;
    const std::string raw = get(section, key);
    try {
        std::size_t used = 0;
        const double v = std::stod(raw, &used);
        if (used != raw.size())
            throw std::invalid_argument(raw);
        return v;
    } catch (const std::exception &) {
        sim::fatal("config [" + section + "] " + key +
                   ": not a number: " + raw);
    }
}

std::int64_t
IniFile::getInt(const std::string &section, const std::string &key,
                std::int64_t fallback) const
{
    if (!has(section, key))
        return fallback;
    const std::string raw = get(section, key);
    try {
        std::size_t used = 0;
        const std::int64_t v = std::stoll(raw, &used);
        if (used != raw.size())
            throw std::invalid_argument(raw);
        return v;
    } catch (const std::exception &) {
        sim::fatal("config [" + section + "] " + key +
                   ": not an integer: " + raw);
    }
}

bool
IniFile::getBool(const std::string &section, const std::string &key,
                 bool fallback) const
{
    if (!has(section, key))
        return fallback;
    std::string raw = get(section, key);
    std::transform(raw.begin(), raw.end(), raw.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (raw == "true" || raw == "yes" || raw == "on" || raw == "1")
        return true;
    if (raw == "false" || raw == "no" || raw == "off" || raw == "0")
        return false;
    sim::fatal("config [" + section + "] " + key +
               ": not a boolean: " + raw);
}

std::string
IniFile::require(const std::string &section,
                 const std::string &key) const
{
    if (!has(section, key))
        sim::fatal("config: missing required [" + section + "] " +
                   key);
    return get(section, key);
}

std::vector<std::string>
IniFile::keys(const std::string &section) const
{
    const auto it = sections_.find(section);
    if (it == sections_.end())
        return {};
    return it->second.keyOrder;
}

void
IniFile::write(std::ostream &os) const
{
    bool first = true;
    for (const auto &name : sectionOrder_) {
        if (!first)
            os << '\n';
        first = false;
        os << '[' << name << "]\n";
        const Section &sec = sections_.at(name);
        for (const auto &key : sec.keyOrder)
            os << key << " = " << sec.values.at(key) << '\n';
    }
}

std::string
IniFile::str() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

namespace {

/**
 * A token the "[section]\nkey = value" grammar can reproduce: no
 * comment markers or newlines (no escaping exists), no surrounding
 * whitespace (parsing trims it away), and section/key-specific
 * structural characters rejected by the caller.
 */
void
checkRepresentable(const std::string &what, const std::string &token,
                   const std::string &forbidden)
{
    if (token.find_first_of(forbidden + "#;\r\n") != std::string::npos)
        sim::fatal("IniFile::set: " + what + " '" + token +
                   "' contains a character the INI grammar cannot "
                   "represent");
    if (trim(token) != token)
        sim::fatal("IniFile::set: " + what + " '" + token +
                   "' has surrounding whitespace, which parsing "
                   "would trim");
}

} // namespace

void
IniFile::set(const std::string &section, const std::string &key,
             const std::string &value)
{
    if (section.empty())
        sim::fatal("IniFile::set: empty section name");
    if (key.empty())
        sim::fatal("IniFile::set: empty key");
    checkRepresentable("section", section, "]");
    checkRepresentable("key", key, "=");
    if (!key.empty() && key.front() == '[')
        sim::fatal("IniFile::set: key '" + key +
                   "' would parse as a section header");
    checkRepresentable("value", value, "");

    if (sections_.find(section) == sections_.end())
        sectionOrder_.push_back(section);
    Section &sec = sections_[section];
    if (sec.values.find(key) == sec.values.end())
        sec.keyOrder.push_back(key);
    sec.values[key] = value;
}

} // namespace config
} // namespace idp
