#include "config/sim_config.hh"

#include "sim/logging.hh"
#include "workload/commercial.hh"
#include "workload/synthetic.hh"
#include "workload/trace_io.hh"

namespace idp {
namespace config {

namespace {

workload::Commercial
commercialFromName(const std::string &name)
{
    if (name == "financial")
        return workload::Commercial::Financial;
    if (name == "websearch")
        return workload::Commercial::Websearch;
    if (name == "tpcc")
        return workload::Commercial::TpcC;
    if (name == "tpch")
        return workload::Commercial::TpcH;
    sim::fatal("config: unknown commercial workload: " + name);
}

} // namespace

disk::DriveSpec
driveFromIni(const IniFile &ini, disk::DriveSpec base)
{
    const std::string s = "drive";
    base.rpm = static_cast<std::uint32_t>(
        ini.getInt(s, "rpm", base.rpm));
    if (ini.has(s, "capacity_gb"))
        base.geometry.capacityBytes = static_cast<std::uint64_t>(
            ini.getDouble(s, "capacity_gb", 0.0) * 1e9);
    base.geometry.platters = static_cast<std::uint32_t>(
        ini.getInt(s, "platters", base.geometry.platters));
    if (ini.has(s, "cache_mb"))
        base.cache.cacheBytes = static_cast<std::uint64_t>(
            ini.getDouble(s, "cache_mb", 8.0) * 1024 * 1024);
    base.dash.armAssemblies = static_cast<std::uint32_t>(
        ini.getInt(s, "actuators", base.dash.armAssemblies));
    base.dash.headsPerArm = static_cast<std::uint32_t>(
        ini.getInt(s, "heads_per_arm", base.dash.headsPerArm));
    base.dash.surfaces = static_cast<std::uint32_t>(
        ini.getInt(s, "surfaces", base.dash.surfaces));
    if (ini.has(s, "policy"))
        base.sched.policy =
            sched::policyFromString(ini.get(s, "policy"));
    base.schedWindow = static_cast<std::uint32_t>(
        ini.getInt(s, "window", base.schedWindow));
    base.seek.singleCylinderMs =
        ini.getDouble(s, "seek_single_ms", base.seek.singleCylinderMs);
    base.seek.averageMs =
        ini.getDouble(s, "seek_avg_ms", base.seek.averageMs);
    base.seek.fullStrokeMs =
        ini.getDouble(s, "seek_full_ms", base.seek.fullStrokeMs);
    base.power.platterDiameterIn = ini.getDouble(
        s, "platter_diameter_in", base.power.platterDiameterIn);
    base.seekScale = ini.getDouble(s, "seek_scale", base.seekScale);
    base.rotScale = ini.getDouble(s, "rot_scale", base.rotScale);
    base.cache.writeBack =
        ini.getBool(s, "write_back", base.cache.writeBack);
    base.maxConcurrentSeeks = static_cast<std::uint32_t>(ini.getInt(
        s, "max_concurrent_seeks", base.maxConcurrentSeeks));
    base.maxConcurrentTransfers = static_cast<std::uint32_t>(
        ini.getInt(s, "max_concurrent_transfers",
                   base.maxConcurrentTransfers));
    base.zeroLatencyAccess =
        ini.getBool(s, "zero_latency", base.zeroLatencyAccess);
    base.coalesce = ini.getBool(s, "coalesce", base.coalesce);
    base.mediaRetryRate =
        ini.getDouble(s, "media_retry_rate", base.mediaRetryRate);
    base.spinDownAfterMs =
        ini.getDouble(s, "spin_down_after_ms", base.spinDownAfterMs);
    base.spinUpMs = ini.getDouble(s, "spin_up_ms", base.spinUpMs);
    base.maxRetries = static_cast<std::uint32_t>(
        ini.getInt(s, "max_retries", base.maxRetries));
    // seek_curve = d1:ms1,d2:ms2,... (measured profile)
    if (ini.has(s, "seek_curve")) {
        base.seek.curvePoints.clear();
        std::string raw = ini.get(s, "seek_curve");
        std::size_t pos = 0;
        while (pos < raw.size()) {
            std::size_t comma = raw.find(',', pos);
            if (comma == std::string::npos)
                comma = raw.size();
            const std::string token = raw.substr(pos, comma - pos);
            const std::size_t colon = token.find(':');
            if (colon == std::string::npos)
                sim::fatal("config [drive] seek_curve: expected "
                           "dist:ms pairs, got " + token);
            base.seek.curvePoints.emplace_back(
                static_cast<std::uint32_t>(
                    std::stoul(token.substr(0, colon))),
                std::stod(token.substr(colon + 1)));
            pos = comma + 1;
        }
    }
    base.normalize();
    return base;
}

workload::Trace
traceFromIni(const IniFile &ini)
{
    const std::string s = "workload";
    const std::string kind = ini.get(s, "kind", "synthetic");
    const std::uint64_t requests = static_cast<std::uint64_t>(
        ini.getInt(s, "requests", 100000));

    if (kind == "synthetic") {
        workload::SyntheticParams p;
        p.requests = requests;
        p.meanInterArrivalMs =
            ini.getDouble(s, "inter_arrival_ms", 4.0);
        p.readFraction = ini.getDouble(s, "read_fraction", 0.6);
        p.sequentialFraction =
            ini.getDouble(s, "sequential_fraction", 0.2);
        p.minSectors = static_cast<std::uint32_t>(
            ini.getDouble(s, "min_kb", 4.0) * 2.0);
        p.maxSectors = static_cast<std::uint32_t>(
            ini.getDouble(s, "max_kb", 32.0) * 2.0);
        if (ini.has(s, "address_gb"))
            p.addressSpaceSectors = static_cast<std::uint64_t>(
                ini.getDouble(s, "address_gb", 700.0) * 1e9 / 512.0);
        p.seed = static_cast<std::uint64_t>(
            ini.getInt(s, "seed", 0x5EED5EED));
        return workload::generateSynthetic(p);
    }
    if (kind == "file") {
        return workload::readTraceFile(ini.require(s, "trace_file"));
    }
    workload::CommercialParams p;
    p.kind = commercialFromName(kind);
    p.requests = requests;
    p.intensityScale = ini.getDouble(s, "intensity", 1.0);
    p.seed =
        static_cast<std::uint64_t>(ini.getInt(s, "seed", 0));
    return workload::generateCommercial(p);
}

Experiment
experimentFromIni(const IniFile &ini)
{
    Experiment exp;
    exp.name = ini.get("run", "name", "run");
    exp.trace = traceFromIni(ini);

    const std::string layout =
        ini.get("system", "layout", "single");
    const std::string kind = ini.get("workload", "kind", "synthetic");
    const std::uint32_t disks = static_cast<std::uint32_t>(
        ini.getInt("system", "disks", 1));

    if (layout == "md" || layout == "hcsd") {
        sim::simAssert(kind != "synthetic" && kind != "file",
                       "config: md/hcsd layouts need a commercial "
                       "workload kind");
        const workload::Commercial c = commercialFromName(kind);
        exp.system = layout == "md" ? core::makeMdSystem(c)
                                    : core::makeHcsdSystem(c);
        // Apply [drive] overrides on top of the builder's defaults.
        exp.system.array.drive =
            driveFromIni(ini, exp.system.array.drive);
    } else {
        const disk::DriveSpec drive =
            driveFromIni(ini, disk::barracudaEs750());
        if (layout == "single") {
            exp.system = core::makeRaid0System(exp.name, drive, 1);
        } else if (layout == "raid0") {
            exp.system = core::makeRaid0System(exp.name, drive, disks);
        } else if (layout == "raid1" || layout == "raid5") {
            exp.system.name = exp.name;
            exp.system.array.layout = layout == "raid1"
                ? array::Layout::Raid1
                : array::Layout::Raid5;
            exp.system.array.disks = disks;
            exp.system.array.drive = drive;
        } else {
            sim::fatal("config: unknown [system] layout: " + layout);
        }
        if (ini.has("system", "stripe_kb"))
            exp.system.array.stripeSectors =
                static_cast<std::uint32_t>(
                    ini.getDouble("system", "stripe_kb", 64.0) * 2.0);
    }

    exp.system.array.useBus =
        ini.getBool("system", "use_bus", false);
    exp.system.array.bus.bandwidthMBps =
        ini.getDouble("system", "bus_mbps", 300.0);
    exp.system.array.bus.channels = static_cast<std::uint32_t>(
        ini.getInt("system", "bus_channels", 1));
    return exp;
}

} // namespace config
} // namespace idp
