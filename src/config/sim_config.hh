/**
 * @file
 * Build experiment objects from an INI configuration — the idpsim
 * front end's glue (DiskSim's "parv file" role).
 *
 * Recognized sections and keys (all optional unless noted):
 *
 *   [drive]   rpm, capacity_gb, platters, cache_mb, actuators,
 *             heads_per_arm, surfaces, policy (fcfs|sstf|clook|sptf|
 *             sptf-aged), window, seek_single_ms, seek_avg_ms,
 *             seek_full_ms, platter_diameter_in, seek_scale,
 *             rot_scale, write_back, max_concurrent_seeks,
 *             max_concurrent_transfers, zero_latency, coalesce,
 *             media_retry_rate, max_retries, seek_curve (d:ms,...),
 *             spin_down_after_ms, spin_up_ms
 *   [system]  layout (single|raid0|raid1|raid5|md|hcsd), disks,
 *             stripe_kb, use_bus, bus_mbps, bus_channels
 *   [workload] kind (synthetic|financial|websearch|tpcc|tpch|file),
 *             requests, inter_arrival_ms, read_fraction,
 *             sequential_fraction, min_kb, max_kb, address_gb, seed,
 *             intensity, trace_file (kind=file, required)
 *   [run]     name
 *
 * The md/hcsd layouts require a commercial workload kind and build
 * the paper's Table 2 systems; [drive] overrides are applied on top
 * of the defaults for every layout.
 */

#ifndef IDP_CONFIG_SIM_CONFIG_HH
#define IDP_CONFIG_SIM_CONFIG_HH

#include <string>

#include "config/ini.hh"
#include "core/experiment.hh"
#include "workload/request.hh"

namespace idp {
namespace config {

/** A fully assembled run: name, system, workload. */
struct Experiment
{
    std::string name = "run";
    core::SystemConfig system;
    workload::Trace trace;
};

/** Drive spec from [drive] overrides applied to @p base. */
disk::DriveSpec driveFromIni(const IniFile &ini,
                             disk::DriveSpec base);

/** Trace from [workload]. */
workload::Trace traceFromIni(const IniFile &ini);

/** Complete experiment from the whole file. */
Experiment experimentFromIni(const IniFile &ini);

} // namespace config
} // namespace idp

#endif // IDP_CONFIG_SIM_CONFIG_HH
