/**
 * @file
 * Minimal INI configuration parser for the idpsim front end.
 *
 * Grammar (a strict subset of common INI dialects):
 *
 *   # comment            ; both comment markers accepted
 *   [section]
 *   key = value          ; whitespace around tokens is trimmed
 *
 * Keys are unique within a section (later duplicates are fatal, to
 * catch config typos loudly, in the spirit of fatal() for user
 * errors). Lookups are case-sensitive.
 */

#ifndef IDP_CONFIG_INI_HH
#define IDP_CONFIG_INI_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace idp {
namespace config {

/** Parsed INI document. */
class IniFile
{
  public:
    /** Parse from a stream. Fatal on malformed input. */
    static IniFile parse(std::istream &is);

    /** Parse a file by path. Fatal on I/O errors. */
    static IniFile parseFile(const std::string &path);

    /** Parse from a string (tests, inline configs). */
    static IniFile parseString(const std::string &text);

    /**
     * Serialize to the canonical "[section]\nkey = value" form, in
     * first-seen order. parseString(str()) reproduces this document
     * exactly (serialization is a fix point: str() of the reparse is
     * byte-identical). Any parsed document is serializable; set()
     * rejects tokens the grammar cannot represent (comment markers,
     * newlines, surrounding whitespace — there is no escaping).
     */
    void write(std::ostream &os) const;
    std::string str() const;

    /** Set (or overwrite) one value, creating the section if new.
     *  Fatal if a token is unrepresentable in the INI grammar. */
    void set(const std::string &section, const std::string &key,
             const std::string &value);

    /** True if [section] key exists. */
    bool has(const std::string &section,
             const std::string &key) const;

    /** Raw string value; @p fallback when absent. */
    std::string get(const std::string &section, const std::string &key,
                    const std::string &fallback = "") const;

    /** Numeric/boolean accessors; fatal on unparseable values. */
    double getDouble(const std::string &section,
                     const std::string &key, double fallback) const;
    std::int64_t getInt(const std::string &section,
                        const std::string &key,
                        std::int64_t fallback) const;
    bool getBool(const std::string &section, const std::string &key,
                 bool fallback) const;

    /** Value that must exist; fatal otherwise. */
    std::string require(const std::string &section,
                        const std::string &key) const;

    /** Section names, in first-seen order. */
    const std::vector<std::string> &sections() const
    {
        return sectionOrder_;
    }

    /** Keys of one section, in first-seen order. */
    std::vector<std::string> keys(const std::string &section) const;

  private:
    struct Section
    {
        std::map<std::string, std::string> values;
        std::vector<std::string> keyOrder;
    };

    std::map<std::string, Section> sections_;
    std::vector<std::string> sectionOrder_;
};

} // namespace config
} // namespace idp

#endif // IDP_CONFIG_INI_HH
