/**
 * @file
 * Zoned-bit-recording disk geometry and LBA mapping.
 *
 * The geometry models what the mechanical simulator needs: how logical
 * blocks map to (cylinder, head, sector) triples, how many sectors each
 * track holds in each zone (outer tracks are denser, which is why
 * transfer rate falls toward the spindle), and the angular position of
 * every sector including track/cylinder skew.
 *
 * Mapping is "cylinder serpentine": LBAs fill track 0 of cylinder 0,
 * then track 1 of cylinder 0, ..., then move to cylinder 1. Sequential
 * streams therefore stay within a cylinder as long as possible, which
 * matches real drives closely enough for the paper's experiments.
 */

#ifndef IDP_GEOM_GEOMETRY_HH
#define IDP_GEOM_GEOMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace idp {
namespace geom {

/** Logical block address (sector granularity). */
using Lba = std::uint64_t;

/** Bytes per sector; the paper-era standard. */
constexpr std::uint32_t kSectorBytes = 512;

/** Physical sector coordinate. */
struct Chs
{
    std::uint32_t cylinder = 0;
    std::uint32_t head = 0;   ///< surface index
    std::uint32_t sector = 0; ///< sector index within the track

    bool
    operator==(const Chs &o) const
    {
        return cylinder == o.cylinder && head == o.head &&
            sector == o.sector;
    }
};

/** One recording zone: a run of cylinders with equal track capacity. */
struct Zone
{
    std::uint32_t firstCylinder = 0;
    std::uint32_t cylinders = 0;
    std::uint32_t sectorsPerTrack = 0;
    Lba firstLba = 0; ///< first LBA mapped into this zone
};

/** Parameters from which a geometry is synthesized. */
struct GeometryParams
{
    /** Formatted capacity target in bytes; actual capacity >= target. */
    std::uint64_t capacityBytes = 750ULL * 1000 * 1000 * 1000;
    std::uint32_t platters = 4;
    std::uint32_t zones = 30;
    /** Sectors per track on the outermost / innermost zone. */
    std::uint32_t outerSpt = 1270;
    std::uint32_t innerSpt = 650;
    /** Track skew (head switch) and cylinder skew, in sectors. */
    std::uint32_t trackSkewSectors = 40;
    std::uint32_t cylinderSkewSectors = 80;
};

/**
 * Immutable zoned disk geometry.
 *
 * Build one with DiskGeometry::build(); all queries are O(log zones)
 * or O(1).
 */
class DiskGeometry
{
  public:
    /** Synthesize a geometry meeting @p params. Fatal on nonsense. */
    static DiskGeometry build(const GeometryParams &params);

    std::uint32_t surfaces() const { return surfaces_; }
    std::uint32_t platters() const { return surfaces_ / 2; }
    std::uint32_t cylinders() const { return cylinders_; }
    std::uint64_t totalSectors() const { return totalSectors_; }
    std::uint64_t capacityBytes() const
    {
        return totalSectors_ * kSectorBytes;
    }
    const std::vector<Zone> &zones() const { return zones_; }

    /** Zone containing @p cylinder. */
    const Zone &zoneOfCylinder(std::uint32_t cylinder) const;

    /** Sectors per track at @p cylinder. */
    std::uint32_t sectorsPerTrack(std::uint32_t cylinder) const;

    /** Sectors in one full cylinder at @p cylinder. */
    std::uint64_t sectorsPerCylinder(std::uint32_t cylinder) const;

    /** Map an LBA to its physical coordinate. Fatal if out of range. */
    Chs lbaToChs(Lba lba) const;

    /** Inverse mapping. Fatal if the coordinate is out of range. */
    Lba chsToLba(const Chs &chs) const;

    /**
     * Angular position, in revolutions [0, 1), of the *start* of the
     * given sector on the platter, accounting for track and cylinder
     * skew.
     */
    double sectorAngle(const Chs &chs) const;

    /** Angular extent of one sector at @p cylinder, in revolutions. */
    double sectorExtent(std::uint32_t cylinder) const;

    /** Human-readable summary (used by examples / reports). */
    std::string describe() const;

    const GeometryParams &params() const { return params_; }

  private:
    DiskGeometry() = default;

    GeometryParams params_;
    std::uint32_t surfaces_ = 0;
    std::uint32_t cylinders_ = 0;
    std::uint64_t totalSectors_ = 0;
    std::vector<Zone> zones_;
};

} // namespace geom
} // namespace idp

#endif // IDP_GEOM_GEOMETRY_HH
