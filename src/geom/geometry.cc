#include "geom/geometry.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace idp {
namespace geom {

DiskGeometry
DiskGeometry::build(const GeometryParams &params)
{
    sim::simAssert(params.platters > 0, "geometry: platters must be > 0");
    sim::simAssert(params.zones > 0, "geometry: zones must be > 0");
    sim::simAssert(params.outerSpt >= params.innerSpt &&
                       params.innerSpt > 0,
                   "geometry: need outerSpt >= innerSpt > 0");
    sim::simAssert(params.capacityBytes >= kSectorBytes,
                   "geometry: capacity too small");

    DiskGeometry g;
    g.params_ = params;
    g.surfaces_ = params.platters * 2;

    // Sectors/track per zone: linear taper from outer to inner.
    std::vector<std::uint32_t> spt(params.zones);
    for (std::uint32_t z = 0; z < params.zones; ++z) {
        const double frac = (params.zones == 1)
            ? 0.0
            : static_cast<double>(z) /
                static_cast<double>(params.zones - 1);
        spt[z] = static_cast<std::uint32_t>(std::lround(
            params.outerSpt -
            frac * (params.outerSpt - params.innerSpt)));
    }

    // Total cylinders so that capacity target is met, split evenly
    // across zones (remainder goes to the outermost zone).
    double avg_spt = 0.0;
    for (auto s : spt)
        avg_spt += s;
    avg_spt /= static_cast<double>(params.zones);
    const double bytes_per_cyl =
        avg_spt * g.surfaces_ * static_cast<double>(kSectorBytes);
    std::uint32_t cylinders = static_cast<std::uint32_t>(
        std::ceil(static_cast<double>(params.capacityBytes) /
                  bytes_per_cyl));
    cylinders = std::max(cylinders, params.zones);

    const std::uint32_t per_zone = cylinders / params.zones;
    std::uint32_t extra = cylinders % params.zones;

    std::uint32_t next_cyl = 0;
    Lba next_lba = 0;
    g.zones_.reserve(params.zones);
    for (std::uint32_t z = 0; z < params.zones; ++z) {
        Zone zone;
        zone.firstCylinder = next_cyl;
        zone.cylinders = per_zone + (z < extra ? 1 : 0);
        zone.sectorsPerTrack = spt[z];
        zone.firstLba = next_lba;
        next_cyl += zone.cylinders;
        next_lba += static_cast<Lba>(zone.cylinders) * g.surfaces_ *
            zone.sectorsPerTrack;
        g.zones_.push_back(zone);
    }
    g.cylinders_ = next_cyl;
    g.totalSectors_ = next_lba;

    sim::simAssert(g.capacityBytes() >= params.capacityBytes,
                   "geometry: built capacity below target");
    return g;
}

const Zone &
DiskGeometry::zoneOfCylinder(std::uint32_t cylinder) const
{
    sim::simAssert(cylinder < cylinders_,
                   "geometry: cylinder out of range");
    // Binary search over firstCylinder.
    auto it = std::upper_bound(
        zones_.begin(), zones_.end(), cylinder,
        [](std::uint32_t c, const Zone &z) { return c < z.firstCylinder; });
    sim::simAssert(it != zones_.begin(), "geometry: zone lookup broken");
    return *(it - 1);
}

std::uint32_t
DiskGeometry::sectorsPerTrack(std::uint32_t cylinder) const
{
    return zoneOfCylinder(cylinder).sectorsPerTrack;
}

std::uint64_t
DiskGeometry::sectorsPerCylinder(std::uint32_t cylinder) const
{
    return static_cast<std::uint64_t>(sectorsPerTrack(cylinder)) *
        surfaces_;
}

Chs
DiskGeometry::lbaToChs(Lba lba) const
{
    sim::simAssert(lba < totalSectors_, "geometry: LBA out of range");
    auto it = std::upper_bound(
        zones_.begin(), zones_.end(), lba,
        [](Lba l, const Zone &z) { return l < z.firstLba; });
    const Zone &zone = *(it - 1);
    const std::uint64_t off = lba - zone.firstLba;
    const std::uint64_t per_cyl =
        static_cast<std::uint64_t>(zone.sectorsPerTrack) * surfaces_;
    Chs chs;
    chs.cylinder =
        zone.firstCylinder + static_cast<std::uint32_t>(off / per_cyl);
    const std::uint64_t in_cyl = off % per_cyl;
    chs.head = static_cast<std::uint32_t>(in_cyl / zone.sectorsPerTrack);
    chs.sector =
        static_cast<std::uint32_t>(in_cyl % zone.sectorsPerTrack);
    return chs;
}

Lba
DiskGeometry::chsToLba(const Chs &chs) const
{
    sim::simAssert(chs.cylinder < cylinders_ && chs.head < surfaces_,
                   "geometry: CHS out of range");
    const Zone &zone = zoneOfCylinder(chs.cylinder);
    sim::simAssert(chs.sector < zone.sectorsPerTrack,
                   "geometry: sector out of range");
    const std::uint64_t per_cyl =
        static_cast<std::uint64_t>(zone.sectorsPerTrack) * surfaces_;
    return zone.firstLba +
        static_cast<std::uint64_t>(chs.cylinder - zone.firstCylinder) *
        per_cyl +
        static_cast<std::uint64_t>(chs.head) * zone.sectorsPerTrack +
        chs.sector;
}

double
DiskGeometry::sectorAngle(const Chs &chs) const
{
    const Zone &zone = zoneOfCylinder(chs.cylinder);
    const std::uint64_t skew =
        static_cast<std::uint64_t>(chs.head) *
            params_.trackSkewSectors +
        static_cast<std::uint64_t>(chs.cylinder) *
            params_.cylinderSkewSectors;
    const std::uint64_t pos =
        (chs.sector + skew) % zone.sectorsPerTrack;
    return static_cast<double>(pos) /
        static_cast<double>(zone.sectorsPerTrack);
}

double
DiskGeometry::sectorExtent(std::uint32_t cylinder) const
{
    return 1.0 / static_cast<double>(sectorsPerTrack(cylinder));
}

std::string
DiskGeometry::describe() const
{
    std::ostringstream os;
    os << "geometry: " << platters() << " platters, " << surfaces_
       << " surfaces, " << cylinders_ << " cylinders, " << zones_.size()
       << " zones, spt " << zones_.back().sectorsPerTrack << ".."
       << zones_.front().sectorsPerTrack << ", "
       << capacityBytes() / 1000000000.0 << " GB";
    return os.str();
}

} // namespace geom
} // namespace idp
