#include "analytic/queueing.hh"

#include "sim/logging.hh"

namespace idp {
namespace analytic {

double
utilization(double lambda, double mean_service)
{
    sim::simAssert(lambda >= 0.0 && mean_service >= 0.0,
                   "analytic: negative rate or service");
    return lambda * mean_service;
}

double
mm1MeanWait(double lambda, double mean_service)
{
    const double rho = utilization(lambda, mean_service);
    sim::simAssert(rho < 1.0, "analytic: unstable M/M/1");
    return rho * mean_service / (1.0 - rho);
}

double
mg1MeanWait(double lambda, double mean_service,
            double second_moment_service)
{
    const double rho = utilization(lambda, mean_service);
    sim::simAssert(rho < 1.0, "analytic: unstable M/G/1");
    return lambda * second_moment_service / (2.0 * (1.0 - rho));
}

double
md1MeanWait(double lambda, double d)
{
    return mg1MeanWait(lambda, d, d * d);
}

double
expectedMinUniform(double span, std::uint32_t k)
{
    sim::simAssert(span >= 0.0 && k >= 1,
                   "analytic: bad min-uniform arguments");
    return span / static_cast<double>(k + 1);
}

double
expectedRotLatencyMs(std::uint32_t rpm, std::uint32_t heads)
{
    sim::simAssert(rpm > 0 && heads > 0,
                   "analytic: bad rotational arguments");
    const double period_ms = 60000.0 / static_cast<double>(rpm);
    return period_ms / (2.0 * static_cast<double>(heads));
}

double
expectedRandomSeekDistance(std::uint32_t cylinders)
{
    return static_cast<double>(cylinders) / 3.0;
}

TwoMoments
uniformPlusConstantMoments(double span, double constant)
{
    sim::simAssert(span >= 0.0 && constant >= 0.0,
                   "analytic: negative span or constant");
    TwoMoments m;
    m.mean = span / 2.0 + constant;
    // E[(U + c)^2] = E[U^2] + 2 c E[U] + c^2 = span^2/3 + c*span + c^2.
    m.second = span * span / 3.0 + constant * span +
        constant * constant;
    return m;
}

} // namespace analytic
} // namespace idp
