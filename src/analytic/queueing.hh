/**
 * @file
 * Closed-form queueing and positioning expectations.
 *
 * A trace-driven simulator is only trustworthy if it reproduces the
 * textbook results in the regimes where those exist. This module
 * collects the closed forms the validation tests (and several benches'
 * sanity notes) compare against:
 *
 *  - M/M/1 and M/G/1 (Pollaczek-Khinchine) waiting times, for the
 *    disk configured into analytically tractable corners;
 *  - expected rotational latency under k uniformly spaced heads
 *    (T / 2k) — the heart of the intra-disk parallelism argument;
 *  - expected random seek distance on a C-cylinder stroke (C/3) —
 *    why vendors quote "average seek" at one-third stroke.
 */

#ifndef IDP_ANALYTIC_QUEUEING_HH
#define IDP_ANALYTIC_QUEUEING_HH

#include <cstdint>

namespace idp {
namespace analytic {

/** Offered load rho = lambda * E[S]; must be < 1 for stability. */
double utilization(double lambda, double mean_service);

/** M/M/1 mean time in queue (excluding service). */
double mm1MeanWait(double lambda, double mean_service);

/**
 * M/G/1 mean time in queue by Pollaczek-Khinchine:
 * Wq = lambda * E[S^2] / (2 (1 - rho)).
 */
double mg1MeanWait(double lambda, double mean_service,
                   double second_moment_service);

/** M/D/1 mean time in queue (deterministic service d). */
double md1MeanWait(double lambda, double d);

/** E[min of k independent U(0, span)] = span / (k + 1). */
double expectedMinUniform(double span, std::uint32_t k);

/**
 * Expected rotational latency, ms, for a drive at @p rpm whose k
 * evenly spaced heads all qualify to read the target sector: the
 * angular gap to the nearest head is U(0, T/k), so the mean is
 * T / (2k).
 */
double expectedRotLatencyMs(std::uint32_t rpm, std::uint32_t heads);

/**
 * Expected |X - Y| for X, Y independent U(0, cylinders): the mean
 * random seek distance, cylinders / 3.
 */
double expectedRandomSeekDistance(std::uint32_t cylinders);

/**
 * First two moments of S = U + c with U ~ U(0, span): the service
 * time of a zero-seek disk access (uniform rotational wait plus a
 * constant transfer/overhead part). Used to drive M/G/1 checks.
 */
struct TwoMoments
{
    double mean = 0.0;
    double second = 0.0;
};
TwoMoments uniformPlusConstantMoments(double span, double constant);

} // namespace analytic
} // namespace idp

#endif // IDP_ANALYTIC_QUEUEING_HH
