/**
 * @file
 * Simulation-wide runtime invariant checker.
 *
 * The simulator's conclusions rest on conservation laws that no
 * single module can see whole: every submitted request completes
 * exactly once, completions are causal (never before arrival plus a
 * minimum service), per-component time never runs backwards, a
 * drive's arm/seek/channel occupancy stays within its configured
 * budgets, and every RAID fan-out joins exactly once. The checker
 * observes those laws through the hooks in verify.hh and reports the
 * first violation either by panicking (production runs — the default)
 * or by recording it (tests that assert the checker catches seeded
 * bugs).
 *
 * Install per run with VerifyScope; the hooks find the checker
 * through a thread-local current, so concurrent sweep workers each
 * verify their own run independently.
 */

#ifndef IDP_VERIFY_INVARIANT_CHECKER_HH
#define IDP_VERIFY_INVARIANT_CHECKER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "stats/mode_tracker.hh"

namespace idp {
namespace verify {

/** What to do when an invariant is violated. */
enum class FailMode
{
    Panic,  ///< sim::panic immediately (production runs)
    Record, ///< append to violations() and continue (checker tests)
};

class InvariantChecker
{
  public:
    explicit InvariantChecker(FailMode mode = FailMode::Panic);

    InvariantChecker(const InvariantChecker &) = delete;
    InvariantChecker &operator=(const InvariantChecker &) = delete;

    /** The checker installed on this thread (null = checking off). */
    static InvariantChecker *current();

    // -- event kernel ------------------------------------------------
    /** Firing an event at @p when with the clock at @p now must never
     *  move time backwards within the calendar's @p domain. Serial
     *  runs use a single domain 0; a PDES run tags the coordinator,
     *  array-phase and per-drive calendars with distinct domains,
     *  because their clocks legitimately interleave at horizons while
     *  each one stays monotonic on its own. */
    void checkKernelTime(std::uint32_t domain, sim::Tick now,
                         sim::Tick when);

    /**
     * Pre-size the per-domain clock table / per-disk state so that a
     * PDES run's concurrent hooks never grow a vector under their
     * feet. Must be called before worker threads start observing.
     */
    void reserveDomains(std::uint32_t domains);
    void reserveDisks(std::uint32_t disks);

    // -- disk level --------------------------------------------------
    void diskSubmit(std::uint32_t dev, std::uint64_t id,
                    sim::Tick arrival, sim::Tick now);
    void diskComplete(std::uint32_t dev, std::uint64_t id,
                      sim::Tick done, sim::Tick min_service);
    /** Occupancy conservation: each in-flight request holds exactly
     *  one busy arm, and the motion/channel budgets are respected. */
    void checkDiskOccupancy(std::uint32_t dev, std::size_t in_flight,
                            std::uint32_t busy_arms,
                            std::uint32_t total_arms,
                            std::uint32_t active_seeks,
                            std::uint32_t max_seeks,
                            std::uint32_t active_transfers,
                            std::uint32_t max_transfers);

    /** The pure-seek lower bound must not exceed the exact
     *  seek+rotation positioning price (admissibility of the pruning
     *  bound and of the PDES dynamic-horizon seek floor). */
    void checkPositioningBound(std::uint32_t dev,
                               sim::Tick lower_bound, sim::Tick exact);
    /** A completed access's maintained completion floor must not lie
     *  in the future of the actual completion tick. */
    void checkServiceBound(std::uint32_t dev, sim::Tick floor,
                           sim::Tick done);

    // -- scheduler level ---------------------------------------------
    /** A sampled pruned-scan pick must equal the exhaustive pick. */
    void checkSchedChoice(const char *policy, std::uint32_t got_slot,
                          std::uint32_t got_arm,
                          std::uint32_t want_slot,
                          std::uint32_t want_arm);

    // -- array level -------------------------------------------------
    void arraySplit(std::uint64_t join_id, sim::Tick arrival,
                    sim::Tick now);
    void arraySub(std::uint64_t join_id);
    void arraySubFinish(std::uint64_t join_id, sim::Tick done);
    void arrayJoin(std::uint64_t join_id, sim::Tick arrival,
                   sim::Tick done);
    /** A fan-out sub-request fell outside the member disk. */
    void arraySubRange(std::uint32_t dev, std::uint64_t lba,
                       std::uint32_t sectors,
                       std::uint64_t disk_sectors);

    // -- mode/energy accounting --------------------------------------
    /**
     * End-of-run mode-time conservation for one drive: the per-mode
     * wall times must tile the total exactly, standby time must lie
     * within idle time, the parked-arm integral must fit
     * arms x total, and the per-RPM-segment breakdown must sum to the
     * totals field-for-field (energy integrated per segment covers
     * exactly the run, no gaps or double billing at transition
     * boundaries).
     */
    void checkModeAccounting(std::uint32_t dev,
                             const stats::ModeTimes &total,
                             const stats::ModeTimes &seg_sum,
                             std::uint32_t arms);

    // -- rebuild engine ----------------------------------------------
    /** Chunk reconstruction started. Each chunk index must be
     *  announced exactly once. */
    void rebuildChunk(std::uint64_t chunk);
    /** The spare write for @p chunk was issued: exactly one per
     *  announced chunk (the rebuilt-stripe conservation law). */
    void rebuildSpareWrite(std::uint64_t chunk);

    /**
     * End-of-run conservation: every disk submit was completed, every
     * join was joined. Call after the simulator drains.
     */
    void finalize();

    /** Violations recorded so far (Record mode; empty in Panic mode
     *  unless the process would already have died). */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** Hook invocations observed (cheap liveness probe for tests). */
    std::uint64_t observations() const
    {
        return observations_.load(std::memory_order_relaxed);
    }

  private:
    struct OutstandingEntry
    {
        /** Outstanding submit count (multiset semantics: RAID RMW
         *  legitimately re-submits a join id to one disk). */
        std::uint32_t count = 0;
        /** Latest submit tick of this id: the causality floor a
         *  completion is checked against. */
        sim::Tick lastSubmit = 0;
    };

    struct DiskState
    {
        std::unordered_map<std::uint64_t, OutstandingEntry> outstanding;
        std::uint64_t submits = 0;
        std::uint64_t completions = 0;
        sim::Tick lastSeen = 0;
    };

    struct JoinState
    {
        sim::Tick arrival = 0;
        std::uint32_t outstanding = 0;
        bool joined = false;
    };

    void fail(const std::string &what);
    DiskState &disk(std::uint32_t dev);
    void touch(std::uint32_t dev, sim::Tick now);

    FailMode mode_;
    /** Guards violations_ in Record mode: PDES drive workers may
     *  record concurrently. Panic mode dies on first fail instead. */
    std::mutex failMutex_;
    std::vector<std::string> violations_;
    /** Relaxed atomic: exactness (not racy approximation) with
     *  concurrent PDES workers is asserted by tests/test_pdes.cc. */
    std::atomic<std::uint64_t> observations_{0};
    /** Indexed by dev (DiskDrive::telemetryId — dense array indices);
     *  grown on first touch serially, pre-sized by reserveDisks for
     *  PDES. Each drive's state is only touched from the calendar
     *  that owns the drive, so entries need no locks. */
    std::vector<DiskState> disks_;
    std::unordered_map<std::uint64_t, JoinState> joins_;
    std::uint64_t joinsCreated_ = 0;
    std::uint64_t joinsCompleted_ = 0;
    /** Spare writes seen per announced rebuild chunk. */
    std::unordered_map<std::uint64_t, std::uint32_t> rebuildWrites_;
    std::uint64_t rebuildChunks_ = 0;
    std::uint64_t rebuildSpareWrites_ = 0;
    /** Per-domain kernel clocks (see checkKernelTime). */
    std::vector<sim::Tick> kernelNow_;
};

/** Installs a checker as this thread's current one (RAII). */
class VerifyScope
{
  public:
    explicit VerifyScope(InvariantChecker *checker);
    ~VerifyScope();

    VerifyScope(const VerifyScope &) = delete;
    VerifyScope &operator=(const VerifyScope &) = delete;

  private:
    InvariantChecker *prev_;
};

} // namespace verify
} // namespace idp

#endif // IDP_VERIFY_INVARIANT_CHECKER_HH
