#include "verify/verify.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace idp {
namespace verify {

namespace {
thread_local InvariantChecker *t_current = nullptr;
} // namespace

bool
enabledFromEnv()
{
#if !IDP_VERIFY
    return false;
#else
    const char *env = std::getenv("IDP_VERIFY");
    if (env == nullptr)
        return true;
    return !(std::strcmp(env, "0") == 0 ||
             std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0);
#endif
}

InvariantChecker::InvariantChecker(FailMode mode) : mode_(mode) {}

InvariantChecker *
InvariantChecker::current()
{
    return t_current;
}

void
InvariantChecker::fail(const std::string &what)
{
    if (mode_ == FailMode::Panic)
        sim::panic("invariant violated: " + what);
    // Record mode may be fed from concurrent PDES drive workers.
    std::lock_guard<std::mutex> lock(failMutex_);
    violations_.push_back(what);
}

void
InvariantChecker::reserveDomains(std::uint32_t domains)
{
    if (domains > kernelNow_.size())
        kernelNow_.resize(domains, 0);
}

void
InvariantChecker::reserveDisks(std::uint32_t disks)
{
    if (disks > disks_.size())
        disks_.resize(disks);
}

InvariantChecker::DiskState &
InvariantChecker::disk(std::uint32_t dev)
{
    if (dev >= disks_.size())
        disks_.resize(dev + 1);
    return disks_[dev];
}

void
InvariantChecker::touch(std::uint32_t dev, sim::Tick now)
{
    DiskState &d = disk(dev);
    if (now < d.lastSeen) {
        std::ostringstream os;
        os << "disk " << dev << ": time ran backwards (" << d.lastSeen
           << " -> " << now << ")";
        fail(os.str());
    }
    d.lastSeen = now;
}

void
InvariantChecker::checkKernelTime(std::uint32_t domain, sim::Tick now,
                                  sim::Tick when)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    if (when < now) {
        std::ostringstream os;
        os << "event kernel: firing at " << when
           << " with the clock already at " << now;
        fail(os.str());
    }
    // Serial runs grow the table lazily (single-threaded); PDES runs
    // pre-size it with reserveDomains before workers start, and each
    // calendar's domain is written only from the thread running it.
    if (domain >= kernelNow_.size())
        kernelNow_.resize(domain + 1, 0);
    sim::Tick &domain_now = kernelNow_[domain];
    if (when < domain_now) {
        std::ostringstream os;
        os << "event kernel: time ran backwards in domain " << domain
           << " (" << domain_now << " -> " << when << ")";
        fail(os.str());
    }
    domain_now = when;
}

void
InvariantChecker::diskSubmit(std::uint32_t dev, std::uint64_t id,
                             sim::Tick arrival, sim::Tick now)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    touch(dev, now);
    if (arrival > now) {
        std::ostringstream os;
        os << "disk " << dev << ": request " << id
           << " submitted before its arrival (" << arrival << " > "
           << now << ")";
        fail(os.str());
    }
    DiskState &d = disk(dev);
    ++d.submits;
    OutstandingEntry &e = d.outstanding[id];
    ++e.count;
    // Completion must be causal vs. the latest submission of this id
    // (a join id can be legitimately re-submitted by RAID-5 RMW).
    e.lastSubmit = now;
}

void
InvariantChecker::diskComplete(std::uint32_t dev, std::uint64_t id,
                               sim::Tick done, sim::Tick min_service)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    touch(dev, done);
    DiskState &d = disk(dev);
    auto it = d.outstanding.find(id);
    if (it == d.outstanding.end() || it->second.count == 0) {
        std::ostringstream os;
        os << "disk " << dev << ": request " << id
           << " completed more times than it was submitted";
        fail(os.str());
        return;
    }
    ++d.completions;
    if (done < it->second.lastSubmit + min_service) {
        std::ostringstream os;
        os << "disk " << dev << ": request " << id << " completed at "
           << done << ", before submit + minimum service ("
           << it->second.lastSubmit + min_service << ")";
        fail(os.str());
    }
    if (--it->second.count == 0)
        d.outstanding.erase(it);
}

void
InvariantChecker::checkPositioningBound(std::uint32_t dev,
                                        sim::Tick lower_bound,
                                        sim::Tick exact)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    if (lower_bound <= exact) [[likely]]
        return;
    std::ostringstream os;
    os << "disk " << dev << ": pure-seek lower bound " << lower_bound
       << " exceeds the exact positioning price " << exact
       << " -- pruning/horizon bound is inadmissible";
    fail(os.str());
}

void
InvariantChecker::checkServiceBound(std::uint32_t dev, sim::Tick floor,
                                    sim::Tick done)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    if (floor <= done) [[likely]]
        return;
    std::ostringstream os;
    os << "disk " << dev << ": completion floor " << floor
       << " lies after the actual completion " << done
       << " -- dynamic-horizon bound is inadmissible";
    fail(os.str());
}

void
InvariantChecker::checkSchedChoice(const char *policy,
                                   std::uint32_t got_slot,
                                   std::uint32_t got_arm,
                                   std::uint32_t want_slot,
                                   std::uint32_t want_arm)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    if (got_slot == want_slot && got_arm == want_arm)
        return;
    std::ostringstream os;
    os << "sched " << policy << ": pruned scan chose (slot "
       << got_slot << ", arm " << got_arm
       << ") but the exhaustive scan chooses (slot " << want_slot
       << ", arm " << want_arm
       << ") -- pruning bound or tie-break order is wrong";
    fail(os.str());
}

void
InvariantChecker::checkDiskOccupancy(
    std::uint32_t dev, std::size_t in_flight, std::uint32_t busy_arms,
    std::uint32_t total_arms, std::uint32_t active_seeks,
    std::uint32_t max_seeks, std::uint32_t active_transfers,
    std::uint32_t max_transfers)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    // Hot path: every dispatch and completion passes through here, so
    // the all-clear case must not touch streams or the heap.
    if (in_flight == busy_arms && busy_arms <= total_arms &&
        active_seeks <= max_seeks &&
        active_transfers <= max_transfers) [[likely]]
        return;
    std::ostringstream os;
    if (in_flight != busy_arms) {
        os << "disk " << dev << ": " << in_flight
           << " in-flight requests but " << busy_arms
           << " busy arms (each access must hold exactly one arm)";
        fail(os.str());
    } else if (busy_arms > total_arms) {
        os << "disk " << dev << ": " << busy_arms
           << " busy arms exceed the " << total_arms << " configured";
        fail(os.str());
    } else if (active_seeks > max_seeks) {
        os << "disk " << dev << ": " << active_seeks
           << " concurrent seeks exceed the motion budget "
           << max_seeks;
        fail(os.str());
    } else if (active_transfers > max_transfers) {
        os << "disk " << dev << ": " << active_transfers
           << " concurrent transfers exceed the channel budget "
           << max_transfers;
        fail(os.str());
    }
}

void
InvariantChecker::arraySplit(std::uint64_t join_id, sim::Tick arrival,
                             sim::Tick now)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    if (arrival > now) {
        std::ostringstream os;
        os << "array: join " << join_id
           << " split before its arrival (" << arrival << " > " << now
           << ")";
        fail(os.str());
    }
    auto [it, inserted] = joins_.emplace(join_id, JoinState{});
    if (!inserted) {
        std::ostringstream os;
        os << "array: join id " << join_id << " reused";
        fail(os.str());
        return;
    }
    it->second.arrival = arrival;
    ++joinsCreated_;
}

void
InvariantChecker::arraySub(std::uint64_t join_id)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    auto it = joins_.find(join_id);
    if (it == joins_.end() || it->second.joined) {
        std::ostringstream os;
        os << "array: sub-request issued for "
           << (it == joins_.end() ? "unknown" : "already-joined")
           << " join " << join_id;
        fail(os.str());
        return;
    }
    ++it->second.outstanding;
}

void
InvariantChecker::arraySubFinish(std::uint64_t join_id, sim::Tick done)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    (void)done;
    auto it = joins_.find(join_id);
    if (it == joins_.end() || it->second.outstanding == 0) {
        std::ostringstream os;
        os << "array: sub-completion for join " << join_id
           << " with no outstanding sub-requests";
        fail(os.str());
        return;
    }
    --it->second.outstanding;
}

void
InvariantChecker::arrayJoin(std::uint64_t join_id, sim::Tick arrival,
                            sim::Tick done)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    auto it = joins_.find(join_id);
    if (it == joins_.end() || it->second.joined) {
        std::ostringstream os;
        os << "array: join " << join_id << " completed "
           << (it == joins_.end() ? "without a split" : "twice");
        fail(os.str());
        return;
    }
    if (it->second.outstanding != 0) {
        std::ostringstream os;
        os << "array: join " << join_id << " completed with "
           << it->second.outstanding << " sub-requests outstanding";
        fail(os.str());
    }
    if (done < arrival) {
        std::ostringstream os;
        os << "array: join " << join_id << " completed at " << done
           << ", before its arrival " << arrival;
        fail(os.str());
    }
    it->second.joined = true;
    ++joinsCompleted_;
    joins_.erase(it);
}

void
InvariantChecker::arraySubRange(std::uint32_t dev, std::uint64_t lba,
                                std::uint32_t sectors,
                                std::uint64_t disk_sectors)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream os;
    os << "array: sub-request [" << lba << ", " << lba + sectors
       << ") for disk " << dev << " lies beyond the member's "
       << disk_sectors << " sectors -- fan-out math lost a request";
    fail(os.str());
}

void
InvariantChecker::checkModeAccounting(std::uint32_t dev,
                                      const stats::ModeTimes &total,
                                      const stats::ModeTimes &seg_sum,
                                      std::uint32_t arms)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    sim::Tick wall_sum = 0;
    for (sim::Tick w : total.wall)
        wall_sum += w;
    if (wall_sum != total.total) {
        std::ostringstream os;
        os << "disk " << dev << ": mode wall times sum to " << wall_sum
           << " ticks but total is " << total.total
           << " (mode attribution must tile the run)";
        fail(os.str());
    }
    const auto idle =
        total.wall[static_cast<std::size_t>(stats::DiskMode::Idle)];
    if (total.standbyTicks > idle) {
        std::ostringstream os;
        os << "disk " << dev << ": " << total.standbyTicks
           << " standby ticks exceed the " << idle
           << " idle ticks (standby must lie within idle)";
        fail(os.str());
    }
    if (total.parkedTicks >
        static_cast<sim::Tick>(arms) * total.total) {
        std::ostringstream os;
        os << "disk " << dev << ": parked-arm integral "
           << total.parkedTicks << " exceeds " << arms
           << " arms x total " << total.total;
        fail(os.str());
    }
    const bool segs_tile = seg_sum.total == total.total &&
        seg_sum.wall == total.wall &&
        seg_sum.vcmSeconds == total.vcmSeconds &&
        seg_sum.channelSeconds == total.channelSeconds &&
        seg_sum.standbyTicks == total.standbyTicks &&
        seg_sum.parkedTicks == total.parkedTicks;
    if (!segs_tile) {
        std::ostringstream os;
        os << "disk " << dev << ": RPM segments sum to "
           << seg_sum.total << " ticks vs total " << total.total
           << " (segments must tile the run field-for-field; drift at "
              "a transition boundary double-bills or drops energy)";
        fail(os.str());
    }
}

void
InvariantChecker::rebuildChunk(std::uint64_t chunk)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    auto [it, inserted] = rebuildWrites_.emplace(chunk, 0u);
    (void)it;
    if (!inserted) {
        std::ostringstream os;
        os << "rebuild: chunk " << chunk << " reconstructed twice";
        fail(os.str());
        return;
    }
    ++rebuildChunks_;
}

void
InvariantChecker::rebuildSpareWrite(std::uint64_t chunk)
{
    observations_.fetch_add(1, std::memory_order_relaxed);
    auto it = rebuildWrites_.find(chunk);
    if (it == rebuildWrites_.end()) {
        std::ostringstream os;
        os << "rebuild: spare write for unannounced chunk " << chunk;
        fail(os.str());
        return;
    }
    if (++it->second > 1) {
        std::ostringstream os;
        os << "rebuild: chunk " << chunk << " written to the spare "
           << it->second << " times (must be exactly once)";
        fail(os.str());
        return;
    }
    ++rebuildSpareWrites_;
}

void
InvariantChecker::finalize()
{
    for (std::size_t dev = 0; dev < disks_.size(); ++dev) {
        const DiskState &d = disks_[dev];
        if (!d.outstanding.empty()) {
            std::ostringstream os;
            os << "disk " << dev << ": " << d.outstanding.size()
               << " request id(s) never completed";
            fail(os.str());
        }
        if (d.submits != d.completions) {
            std::ostringstream os;
            os << "disk " << dev << ": " << d.submits
               << " submits vs " << d.completions << " completions";
            fail(os.str());
        }
    }
    if (!joins_.empty()) {
        std::ostringstream os;
        os << "array: " << joins_.size() << " join(s) never completed";
        fail(os.str());
    }
    if (joinsCreated_ != joinsCompleted_) {
        std::ostringstream os;
        os << "array: " << joinsCreated_ << " splits vs "
           << joinsCompleted_ << " joins";
        fail(os.str());
    }
    // Rebuilt-stripe conservation: every announced chunk got exactly
    // one spare write (per-chunk over-writes fail at the hook; here
    // the under-write side closes the identity).
    if (rebuildChunks_ != rebuildSpareWrites_) {
        std::ostringstream os;
        os << "rebuild: " << rebuildChunks_ << " chunks vs "
           << rebuildSpareWrites_ << " spare writes";
        fail(os.str());
    }
    for (const auto &[chunk, writes] : rebuildWrites_) {
        if (writes == 1)
            continue;
        std::ostringstream os;
        os << "rebuild: chunk " << chunk << " saw " << writes
           << " spare writes (must be exactly one)";
        fail(os.str());
    }
}

VerifyScope::VerifyScope(InvariantChecker *checker) : prev_(t_current)
{
    t_current = checker;
}

VerifyScope::~VerifyScope()
{
    t_current = prev_;
}

} // namespace verify
} // namespace idp
