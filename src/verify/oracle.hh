/**
 * @file
 * Analytic oracle suite: closed-form cross-checks of the full
 * simulator.
 *
 * A trace-driven simulator earns trust by reproducing textbook
 * results in the degenerate corners where those exist. Each oracle
 * here configures the simulator into such a corner — seek and/or
 * rotation scaled to zero, fixed service times, Poisson arrivals,
 * cache-bypassing writes — runs the *full* stack (workload -> array
 * -> disk -> statistics), and compares a measured statistic against
 * the matching closed form from src/analytic within a stated
 * tolerance:
 *
 *  - M/M/1 mean queue wait (event kernel driving an exponential toy
 *    server — validates kernel, RNG, and the formula itself);
 *  - M/D/1 and M/G/1 (Pollaczek-Khinchine) mean queue waits on the
 *    zero-seek disk;
 *  - SA(n) mean rotational latency, T / 2n, for n evenly spaced arm
 *    assemblies (the paper's Figure 4/5 mechanism) for n = 1..4;
 *  - the expected-min-uniform law T / (n + 1) for n arms at
 *    *independently random* azimuths, checked over an ensemble of
 *    randomized placements — this is `expectedMinUniform(period, n)`
 *    and would catch Figure-4/5-class modeling drift that the evenly
 *    spaced check alone cannot (it exercises arbitrary geometry);
 *  - busy-fraction vs. offered utilization.
 *
 * All runs are seeded and deterministic: tolerances cover the fixed
 * sampling realization, not run-to-run noise, so a failure always
 * means drift.
 */

#ifndef IDP_VERIFY_ORACLE_HH
#define IDP_VERIFY_ORACLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace idp {
namespace verify {

/** One oracle comparison. */
struct OracleCase
{
    std::string name;     ///< e.g. "mg1.disk.wait"
    double expected = 0.0;  ///< closed-form value
    double simulated = 0.0; ///< measured value
    double tolerance = 0.0; ///< relative unless absolute is set
    bool absolute = false;  ///< tolerance is an absolute bound
    bool pass = false;

    double error() const;
};

/**
 * Run every oracle. @p scale multiplies request counts (use < 1 for
 * smoke runs; tolerances are calibrated for scale = 1).
 */
std::vector<OracleCase> runAnalyticOracles(double scale = 1.0);

/** True when every case passed. */
bool allPassed(const std::vector<OracleCase> &cases);

/** Human-readable report, one line per case. */
void printOracleReport(std::ostream &os,
                       const std::vector<OracleCase> &cases);

} // namespace verify
} // namespace idp

#endif // IDP_VERIFY_ORACLE_HH
