#include "verify/oracle.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>

#include "analytic/queueing.hh"
#include "core/experiment.hh"
#include "disk/disk_drive.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/sampler.hh"

namespace idp {
namespace verify {

namespace {

using disk::DiskDrive;
using disk::DriveSpec;
using workload::IoRequest;

std::uint64_t
scaled(std::uint64_t n, double scale)
{
    const double v = static_cast<double>(n) * scale;
    return std::max<std::uint64_t>(16, static_cast<std::uint64_t>(v));
}

/**
 * Monte-Carlo tolerances are calibrated for scale 1; a scaled-down
 * smoke run has 1/scale fewer samples, so its standard error grows by
 * 1/sqrt(scale). Widen the tolerance the same way to keep the pass
 * threshold at a constant number of sigmas.
 */
double
scaledTol(double base, double scale)
{
    return scale < 1.0 ? base / std::sqrt(scale) : base;
}

OracleCase
makeCase(std::string name, double expected, double simulated,
         double tolerance, bool absolute = false)
{
    OracleCase c;
    c.name = std::move(name);
    c.expected = expected;
    c.simulated = simulated;
    c.tolerance = tolerance;
    c.absolute = absolute;
    c.pass = c.error() <= tolerance;
    return c;
}

DriveSpec
fcfsSpec()
{
    DriveSpec spec = disk::enterpriseDrive(2.0, 10000, 2);
    spec.sched.policy = sched::Policy::Fcfs;
    return spec;
}

/** Drive-level harness mirroring the validation tests: one disk, a
 *  completion sink recording response and pure-service times. */
struct DriveHarness
{
    sim::Simulator simul;
    stats::SampleSet responses;
    stats::SampleSet services;
    DiskDrive drive;

    explicit DriveHarness(const DriveSpec &spec)
        : drive(simul, spec,
                [this](const IoRequest &r, sim::Tick done,
                       const disk::ServiceInfo &info) {
                    responses.add(sim::ticksToMs(done - r.arrival));
                    services.add(sim::ticksToMs(
                        info.seekTicks + info.rotTicks +
                        info.xferTicks));
                })
    {
    }
};

// ------------------------------------------------------------------
// M/M/1 against the bare event kernel: a toy exponential server fed
// by a Poisson stream, no disk at all. Validates the kernel's event
// ordering, the RNG's exponential sampler, and the closed form.
// ------------------------------------------------------------------
OracleCase
mm1Kernel(double scale)
{
    const double service_ms = 1.0;
    const double rho = 0.7;
    const double lambda = rho / service_ms;
    const std::uint64_t n = scaled(200000, scale);

    sim::Simulator simul;
    sim::Rng rng(0x0A11CE5EEDULL);
    stats::SampleSet waits(1u << 16);

    // Pre-draw arrivals so the server's service draws do not
    // interleave with the arrival stream.
    std::vector<sim::Tick> arrivals;
    arrivals.reserve(n);
    double clock_ms = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        clock_ms += rng.exponential(1.0 / lambda);
        arrivals.push_back(sim::msToTicks(clock_ms));
    }

    struct Server
    {
        std::vector<sim::Tick> queue;
        bool busy = false;
    } server;

    std::function<void()> finish;
    auto start = [&](sim::Tick arrival) {
        server.busy = true;
        const sim::Tick now = simul.now();
        waits.add(sim::ticksToMs(now - arrival));
        const sim::Tick svc =
            sim::msToTicks(rng.exponential(service_ms));
        simul.schedule(now + svc, [&finish] { finish(); });
    };
    finish = [&] {
        server.busy = false;
        if (!server.queue.empty()) {
            const sim::Tick head = server.queue.front();
            server.queue.erase(server.queue.begin());
            start(head);
        }
    };
    for (const sim::Tick at : arrivals) {
        simul.schedule(at, [&, at] {
            if (server.busy)
                server.queue.push_back(at);
            else
                start(at);
        });
    }
    simul.run();

    return makeCase("mm1.kernel.wait",
                    analytic::mm1MeanWait(lambda, service_ms),
                    waits.mean(), scaledTol(0.05, scale));
}

// ------------------------------------------------------------------
// M/D/1 and M/G/1 against the *full* stack: workload trace ->
// StorageArray (degenerate Concat) -> DiskDrive -> RunResult stats.
// Zero seek and fixed-size track-0 writes make the service time
// deterministic (M/D/1) or uniform-plus-constant (M/G/1, the
// Pollaczek-Khinchine check).
// ------------------------------------------------------------------
OracleCase
mx1FullStack(bool deterministic, double scale)
{
    DriveSpec spec = fcfsSpec();
    spec.seekScale = 0.0;
    if (deterministic)
        spec.rotScale = 0.0;

    const auto g = geom::DiskGeometry::build(spec.geometry);
    const std::uint32_t spt = g.sectorsPerTrack(0);
    const double period_ms = 60000.0 / spec.rpm;
    const double xfer_ms = 8.0 / spt * period_ms;
    const double c = xfer_ms + spec.controllerOverheadMs;

    double mean_service = 0.0;
    double wq_theory = 0.0;
    const double rho = deterministic ? 0.7 : 0.6;
    if (deterministic) {
        mean_service = c;
        wq_theory = analytic::md1MeanWait(rho / c, c);
    } else {
        const auto m =
            analytic::uniformPlusConstantMoments(period_ms, c);
        mean_service = m.mean;
        wq_theory =
            analytic::mg1MeanWait(rho / m.mean, m.mean, m.second);
    }
    const double lambda = rho / mean_service;

    const std::uint64_t n = scaled(150000, scale);
    sim::Rng rng(deterministic ? 1041 : 1043);
    workload::Trace trace;
    trace.reserve(n);
    double clock_ms = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        clock_ms += rng.exponential(1.0 / lambda);
        IoRequest req;
        req.id = i;
        req.arrival = sim::msToTicks(clock_ms);
        req.lba = rng.uniformInt(static_cast<std::uint64_t>(spt - 8));
        req.sectors = 8;
        req.isRead = false; // writes bypass the cache (write-through)
        trace.push_back(req);
    }

    const core::SystemConfig config = core::makeRaid0System(
        deterministic ? "oracle-md1" : "oracle-mg1", spec, 1);
    const core::RunResult run = core::runTrace(trace, config);

    const double wq = run.meanResponseMs - mean_service;
    return makeCase(deterministic ? "md1.disk.wait" : "mg1.disk.wait",
                    wq_theory, wq, scaledTol(0.05, scale));
}

// ------------------------------------------------------------------
// SA(n) rotational latency, evenly spaced arms: T / (2n).
// ------------------------------------------------------------------
OracleCase
rotEvenlySpaced(std::uint32_t arms, double scale)
{
    DriveSpec spec = disk::makeIntraDiskParallel(fcfsSpec(), arms);
    spec.sched.policy = sched::Policy::Fcfs;
    spec.seekScale = 0.0;
    DriveHarness h(spec);

    sim::Rng rng(2000 + arms);
    const std::uint64_t space = h.drive.geometry().totalSectors() - 8;
    const std::uint64_t n = scaled(6000, scale);
    for (std::uint64_t i = 0; i < n; ++i) {
        IoRequest req;
        req.id = i;
        // Wide spacing: every access sees an idle drive, so the
        // measured rotMs is pure positional wait, no queueing.
        req.arrival = static_cast<sim::Tick>(i) * 25 *
            sim::kTicksPerMs;
        req.lba = rng.uniformInt(space);
        req.sectors = 8;
        req.isRead = false;
        h.simul.schedule(req.arrival,
                         [&h, req] { h.drive.submit(req); });
    }
    h.simul.run();

    return makeCase("rot.evenly.sa" + std::to_string(arms),
                    analytic::expectedRotLatencyMs(spec.rpm, arms),
                    h.drive.stats().rotMs.mean(),
                    scaledTol(0.03, scale));
}

// ------------------------------------------------------------------
// The expected-min-uniform law, T / (n + 1): n arms at *independently
// random* chassis azimuths. One random placement has a mean forward
// wait of (sum of squared azimuth gaps) / 2 x T, which only averages
// to T / (n + 1) across placements — so this oracle runs an ensemble
// of K randomized drives and compares the ensemble mean. It exercises
// arbitrary arm geometry, which the evenly spaced check cannot.
// ------------------------------------------------------------------
OracleCase
rotMinUniform(std::uint32_t arms, double scale)
{
    // Across-config relative SD of the per-placement mean is ~26% for
    // n in {2,3,4} (Dirichlet gap algebra), so K = 2000 puts the
    // ensemble standard error near 0.6% — the 3% tolerance is ~5
    // sigma. n = 1 has no placement variance at all.
    const std::uint64_t configs =
        arms == 1 ? scaled(20, scale) : scaled(2000, scale);
    const std::uint64_t per_config = 40;

    sim::Rng placement(3000 + arms);
    double sum_of_means = 0.0;
    double period_ms = 0.0;
    for (std::uint64_t k = 0; k < configs; ++k) {
        DriveSpec spec =
            disk::makeIntraDiskParallel(fcfsSpec(), arms);
        spec.sched.policy = sched::Policy::Fcfs;
        spec.seekScale = 0.0;
        spec.armAzimuths.clear();
        for (std::uint32_t a = 0; a < arms; ++a)
            spec.armAzimuths.push_back(placement.uniform());

        DriveHarness h(spec);
        period_ms = h.drive.spindle().periodMs();
        const std::uint64_t space =
            h.drive.geometry().totalSectors() - 8;
        for (std::uint64_t i = 0; i < per_config; ++i) {
            IoRequest req;
            req.id = i;
            req.arrival = static_cast<sim::Tick>(i) * 25 *
                sim::kTicksPerMs;
            req.lba = placement.uniformInt(space);
            req.sectors = 8;
            req.isRead = false;
            h.simul.schedule(req.arrival,
                             [&h, req] { h.drive.submit(req); });
        }
        h.simul.run();
        sum_of_means += h.drive.stats().rotMs.mean();
    }

    return makeCase(
        "rot.minuniform.sa" + std::to_string(arms),
        analytic::expectedMinUniform(period_ms, arms),
        sum_of_means / static_cast<double>(configs),
        scaledTol(0.03, scale));
}

// ------------------------------------------------------------------
// Busy fraction vs. offered utilization (mode-time conservation).
// ------------------------------------------------------------------
OracleCase
utilizationBusyFraction(double scale)
{
    DriveSpec spec = fcfsSpec();
    spec.seekScale = 0.0;
    spec.rotScale = 0.0;
    DriveHarness h(spec);
    const std::uint32_t spt = h.drive.geometry().sectorsPerTrack(0);
    const double service_ms = 8.0 / spt *
            h.drive.spindle().periodMs() +
        spec.controllerOverheadMs;
    const double rho = 0.5;
    sim::Rng rng(4001);
    double clock_ms = 0.0;
    const std::uint64_t n = scaled(40000, scale);
    for (std::uint64_t i = 0; i < n; ++i) {
        clock_ms += rng.exponential(service_ms / rho);
        IoRequest req;
        req.id = i;
        req.arrival = sim::msToTicks(clock_ms);
        req.lba = rng.uniformInt(static_cast<std::uint64_t>(spt - 8));
        req.sectors = 8;
        req.isRead = false;
        h.simul.schedule(req.arrival,
                         [&h, req] { h.drive.submit(req); });
    }
    h.simul.run();
    const auto times = h.drive.finishModeTimes();
    const double busy = 1.0 -
        static_cast<double>(times.wall[static_cast<std::size_t>(
            stats::DiskMode::Idle)]) /
            static_cast<double>(times.total);
    return makeCase("util.disk.busy", rho, busy, 0.03,
                    /*absolute=*/true);
}

} // namespace

double
OracleCase::error() const
{
    const double diff = std::fabs(simulated - expected);
    if (absolute)
        return diff;
    return expected == 0.0 ? diff : diff / std::fabs(expected);
}

std::vector<OracleCase>
runAnalyticOracles(double scale)
{
    std::vector<OracleCase> cases;
    cases.push_back(mm1Kernel(scale));
    cases.push_back(mx1FullStack(/*deterministic=*/true, scale));
    cases.push_back(mx1FullStack(/*deterministic=*/false, scale));
    for (std::uint32_t arms = 1; arms <= 4; ++arms)
        cases.push_back(rotEvenlySpaced(arms, scale));
    for (std::uint32_t arms = 1; arms <= 4; ++arms)
        cases.push_back(rotMinUniform(arms, scale));
    cases.push_back(utilizationBusyFraction(scale));
    return cases;
}

bool
allPassed(const std::vector<OracleCase> &cases)
{
    return std::all_of(cases.begin(), cases.end(),
                       [](const OracleCase &c) { return c.pass; });
}

void
printOracleReport(std::ostream &os,
                  const std::vector<OracleCase> &cases)
{
    os << std::left << std::setw(22) << "oracle" << std::right
       << std::setw(12) << "expected" << std::setw(12) << "simulated"
       << std::setw(9) << "error" << std::setw(9) << "tol"
       << "  verdict\n";
    for (const OracleCase &c : cases) {
        os << std::left << std::setw(22) << c.name << std::right
           << std::fixed << std::setprecision(4) << std::setw(12)
           << c.expected << std::setw(12) << c.simulated
           << std::setprecision(2) << std::setw(8)
           << c.error() * (c.absolute ? 1.0 : 100.0)
           << (c.absolute ? " " : "%") << std::setw(8)
           << c.tolerance * (c.absolute ? 1.0 : 100.0)
           << (c.absolute ? " " : "%")
           << (c.pass ? "  ok" : "  FAIL") << '\n';
    }
    os.unsetf(std::ios::floatfield);
}

} // namespace verify
} // namespace idp
