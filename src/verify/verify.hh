/**
 * @file
 * Runtime invariant-checking hooks — the only verify header module
 * code should include.
 *
 * Compile-time guard: building with IDP_VERIFY=0 (cmake
 * -DIDP_VERIFY=OFF) turns activeChecker() into constexpr nullptr, so
 * every hook below folds to nothing — checking is zero-cost, not
 * merely cheap. With the guard on (the default) the cost of a
 * disabled run is one thread-local load and branch per hook, bounded
 * by bench/micro_simcore.
 *
 * Runtime control is per run: core::runTrace and core::runClosedLoop
 * install an InvariantChecker for the duration of a run unless the
 * IDP_VERIFY environment variable disables it (IDP_VERIFY=0), and the
 * hooks see it through the thread-local current. Tests install their
 * own checker (often in Record mode) through VerifyScope.
 *
 * The hooks deliberately observe and never mutate: an installed
 * checker cannot perturb event order, RNG streams, or statistics, so
 * verified runs stay byte-identical to unverified ones.
 */

#ifndef IDP_VERIFY_VERIFY_HH
#define IDP_VERIFY_VERIFY_HH

#include "verify/invariant_checker.hh"

#ifndef IDP_VERIFY
#define IDP_VERIFY 1
#endif

namespace idp {
namespace verify {

#if IDP_VERIFY
constexpr bool kCompiledIn = true;

inline InvariantChecker *activeChecker()
{
    return InvariantChecker::current();
}
#else
constexpr bool kCompiledIn = false;

constexpr InvariantChecker *activeChecker() { return nullptr; }
#endif

/** True when runs should install a checker (IDP_VERIFY env, default
 *  on; any of "0", "off", "false" disables). Compiled-out builds
 *  always report false. */
bool enabledFromEnv();

// ---------------------------------------------------------------
// Event-kernel hooks
// ---------------------------------------------------------------

/** An event is about to fire at @p when with the calendar tagged
 *  @p domain (Simulator::verifyDomain) and the clock at @p now. */
inline void
onEventFire(std::uint32_t domain, sim::Tick now, sim::Tick when)
{
    if (InvariantChecker *vc = activeChecker())
        vc->checkKernelTime(domain, now, when);
}

// ---------------------------------------------------------------
// Disk-level hooks (dev = DiskDrive::telemetryId)
// ---------------------------------------------------------------

/** A host-visible request entered DiskDrive::submit. */
inline void
onDiskSubmit(std::uint32_t dev, std::uint64_t id, sim::Tick arrival,
             sim::Tick now)
{
    if (InvariantChecker *vc = activeChecker())
        vc->diskSubmit(dev, id, arrival, now);
}

/** A host-visible request completed (cache hit or media access). */
inline void
onDiskComplete(std::uint32_t dev, std::uint64_t id, sim::Tick done,
               sim::Tick min_service)
{
    if (InvariantChecker *vc = activeChecker())
        vc->diskComplete(dev, id, done, min_service);
}

/** Occupancy conservation probe, called at service start/end. */
inline void
onDiskOccupancy(std::uint32_t dev, std::size_t in_flight,
                std::uint32_t busy_arms, std::uint32_t total_arms,
                std::uint32_t active_seeks, std::uint32_t max_seeks,
                std::uint32_t active_transfers,
                std::uint32_t max_transfers)
{
    if (InvariantChecker *vc = activeChecker())
        vc->checkDiskOccupancy(dev, in_flight, busy_arms, total_arms,
                               active_seeks, max_seeks,
                               active_transfers, max_transfers);
}

/**
 * The positioning oracle priced a (request, arm) pair: the pure-seek
 * pruning bound (also the PDES horizon floor's seek ingredient) must
 * never exceed the exact seek+rotation price — including mid-RPM-ramp,
 * where every period-derived term re-derives per segment.
 */
inline void
onPositioningBound(std::uint32_t dev, sim::Tick lower_bound,
                   sim::Tick exact)
{
    if (InvariantChecker *vc = activeChecker())
        vc->checkPositioningBound(dev, lower_bound, exact);
}

/**
 * A media access completed at @p done; its maintained completion
 * floor (the PDES dynamic-horizon ingredient) must be admissible,
 * i.e. never in the future of the actual completion.
 */
inline void
onDiskServiceBound(std::uint32_t dev, sim::Tick floor, sim::Tick done)
{
    if (InvariantChecker *vc = activeChecker())
        vc->checkServiceBound(dev, floor, done);
}

// ---------------------------------------------------------------
// Scheduler hooks
// ---------------------------------------------------------------

/**
 * A pruned (indexed) scheduler selection, sampled and re-derived with
 * the exhaustive reference scan: the two picks must be identical —
 * the pruning bounds are admissible and the tie-break order is
 * preserved by construction, so any divergence is a bug.
 */
inline void
onSchedChoice(const char *policy, std::uint32_t got_slot,
              std::uint32_t got_arm, std::uint32_t want_slot,
              std::uint32_t want_arm)
{
    if (InvariantChecker *vc = activeChecker())
        vc->checkSchedChoice(policy, got_slot, got_arm, want_slot,
                             want_arm);
}

// ---------------------------------------------------------------
// Array-level hooks (RAID split/join accounting)
// ---------------------------------------------------------------

/** A logical request fanned out under @p join_id. */
inline void
onArraySplit(std::uint64_t join_id, sim::Tick arrival, sim::Tick now)
{
    if (InvariantChecker *vc = activeChecker())
        vc->arraySplit(join_id, arrival, now);
}

/** One sub-request was issued for @p join_id (incl. deferred RMW). */
inline void
onArraySub(std::uint64_t join_id)
{
    if (InvariantChecker *vc = activeChecker())
        vc->arraySub(join_id);
}

/** One sub-request of @p join_id finished. */
inline void
onArraySubFinish(std::uint64_t join_id, sim::Tick done)
{
    if (InvariantChecker *vc = activeChecker())
        vc->arraySubFinish(join_id, done);
}

/** The logical request behind @p join_id completed. */
inline void
onArrayJoin(std::uint64_t join_id, sim::Tick arrival, sim::Tick done)
{
    if (InvariantChecker *vc = activeChecker())
        vc->arrayJoin(join_id, arrival, done);
}

/** A fan-out produced a sub-request outside the member disk's
 *  [0, sectors) range — layout math lost a request. */
inline void
onArraySubRange(std::uint32_t dev, std::uint64_t lba,
                std::uint32_t sectors, std::uint64_t disk_sectors)
{
    if (InvariantChecker *vc = activeChecker())
        vc->arraySubRange(dev, lba, sectors, disk_sectors);
}

// ---------------------------------------------------------------
// Mode/energy accounting hooks
// ---------------------------------------------------------------

/** A drive closed its mode books: @p total must conserve (wall tiles
 *  total, standby within idle) and the RPM segments must tile it. */
inline void
onModeAccounting(std::uint32_t dev, const stats::ModeTimes &total,
                 const stats::ModeTimes &seg_sum, std::uint32_t arms)
{
    if (InvariantChecker *vc = activeChecker())
        vc->checkModeAccounting(dev, total, seg_sum, arms);
}

// ---------------------------------------------------------------
// Rebuild-engine hooks (spare reconstruction conservation)
// ---------------------------------------------------------------

/** Reconstruction of chunk @p chunk started (reads issued). */
inline void
onRebuildChunk(std::uint64_t chunk)
{
    if (InvariantChecker *vc = activeChecker())
        vc->rebuildChunk(chunk);
}

/** The spare write materializing chunk @p chunk was issued. */
inline void
onRebuildSpareWrite(std::uint64_t chunk)
{
    if (InvariantChecker *vc = activeChecker())
        vc->rebuildSpareWrite(chunk);
}

} // namespace verify
} // namespace idp

#endif // IDP_VERIFY_VERIFY_HH
