#include "disk/drive_config.hh"

#include <sstream>

#include "sim/logging.hh"

namespace idp {
namespace disk {

std::string
DashConfig::str() const
{
    std::ostringstream os;
    os << "D" << diskStacks << "A" << armAssemblies << "S" << surfaces
       << "H" << headsPerArm;
    return os.str();
}

std::uint32_t
DashConfig::dataPaths() const
{
    return diskStacks * armAssemblies * surfaces * headsPerArm;
}

bool
DashConfig::conventional() const
{
    return diskStacks == 1 && armAssemblies == 1 && surfaces == 1 &&
        headsPerArm == 1;
}

void
DriveSpec::normalize()
{
    sim::simAssert(dash.armAssemblies >= 1,
                   "drive: need at least one arm assembly");
    sim::simAssert(dash.headsPerArm >= 1,
                   "drive: need at least one head per arm");
    sim::simAssert(dash.surfaces >= 1 &&
                       dash.surfaces <= geometry.platters * 2,
                   "drive: surface parallelism beyond surface count");
    sim::simAssert(dash.diskStacks == 1,
                   "drive: model one stack per drive; use a "
                   "StorageArray of smaller drives for the D "
                   "dimension");
    power.rpm = rpm;
    power.platters = geometry.platters;
    power.actuators = dash.armAssemblies;
    if (maxConcurrentSeeks > dash.armAssemblies)
        maxConcurrentSeeks = dash.armAssemblies;
    if (maxConcurrentTransfers > dash.armAssemblies)
        maxConcurrentTransfers = dash.armAssemblies;
    sim::simAssert(maxConcurrentSeeks >= 1 && maxConcurrentTransfers >= 1,
                   "drive: concurrency limits must be >= 1");
    sim::simAssert(seekScale >= 0.0 && rotScale >= 0.0,
                   "drive: scale knobs must be non-negative");
    if (schedWindow == 0)
        schedWindow = 1;
}

DriveSpec
barracudaEs750()
{
    DriveSpec spec;
    spec.name = "HC-SD";
    spec.rpm = 7200;
    spec.geometry.capacityBytes = 750ULL * 1000 * 1000 * 1000;
    spec.geometry.platters = 4;
    spec.geometry.zones = 30;
    spec.geometry.outerSpt = 1270; // ~78 MB/s outer
    spec.geometry.innerSpt = 650;  // ~40 MB/s inner
    spec.seek.singleCylinderMs = 0.8;
    spec.seek.averageMs = 8.5;
    spec.seek.fullStrokeMs = 17.0;
    spec.cache.cacheBytes = 8ULL * 1024 * 1024;
    spec.power.platterDiameterIn = 3.7;
    spec.sched.policy = sched::Policy::Clook;
    spec.normalize();
    return spec;
}

DriveSpec
enterpriseDrive(double capacity_gb, std::uint32_t rpm,
                std::uint32_t platters)
{
    DriveSpec spec;
    spec.name = "enterprise";
    spec.rpm = rpm;
    spec.geometry.capacityBytes =
        static_cast<std::uint64_t>(capacity_gb * 1e9);
    spec.geometry.platters = platters;
    spec.geometry.zones = 16;
    // 10k-class drives of the trace era: faster spindles, smaller
    // platters, quicker arms.
    spec.geometry.outerSpt = 900;
    spec.geometry.innerSpt = 500;
    spec.seek.singleCylinderMs = 0.6;
    spec.seek.averageMs = rpm >= 10000 ? 4.7 : 8.5;
    spec.seek.fullStrokeMs = rpm >= 10000 ? 10.0 : 17.0;
    spec.cache.cacheBytes = 8ULL * 1024 * 1024;
    spec.power.platterDiameterIn = rpm >= 10000 ? 3.3 : 3.7;
    spec.sched.policy = sched::Policy::Clook;
    spec.normalize();
    return spec;
}

DriveSpec
makeIntraDiskParallel(DriveSpec base, std::uint32_t actuators)
{
    sim::simAssert(actuators >= 1, "makeIntraDiskParallel: n >= 1");
    base.dash.armAssemblies = actuators;
    base.maxConcurrentSeeks = 1;     // SA: single arm in motion
    base.maxConcurrentTransfers = 1; // single data channel
    base.sched.policy = sched::Policy::Clook;
    std::ostringstream name;
    name << "HC-SD-SA(" << actuators << ")";
    base.name = name.str();
    base.normalize();
    return base;
}

DriveSpec
withRpm(DriveSpec base, std::uint32_t rpm)
{
    base.rpm = rpm;
    std::ostringstream name;
    name << base.name << "/" << rpm;
    base.name = name.str();
    base.normalize();
    return base;
}

double
armAzimuth(std::uint32_t k, std::uint32_t n)
{
    sim::simAssert(n > 0 && k < n, "armAzimuth: bad arm index");
    return static_cast<double>(k) / static_cast<double>(n);
}

} // namespace disk
} // namespace idp
