#include "disk/cyl_index.hh"

#include "sim/logging.hh"

namespace idp {
namespace disk {

namespace {

/** Highest set bit index <= @p from over @p words, or -1. */
std::int32_t
scanDown(const std::uint64_t *words, std::int32_t from)
{
    if (from < 0)
        return -1;
    std::uint32_t word = static_cast<std::uint32_t>(from) >> 6;
    std::uint32_t bit = static_cast<std::uint32_t>(from) & 63;
    std::uint64_t w = words[word] & (~0ULL >> (63 - bit));
    while (true) {
        if (w != 0)
            return static_cast<std::int32_t>(
                (word << 6) + 63 -
                static_cast<std::uint32_t>(__builtin_clzll(w)));
        if (word == 0)
            return -1;
        w = words[--word];
    }
}

/** Lowest set bit index >= @p from over @p words, or kNil. */
std::uint32_t
scanUp(const std::uint64_t *words, std::uint32_t from,
       std::uint32_t limit)
{
    if (from >= limit)
        return CylinderBuckets::kNil;
    std::uint32_t word = from >> 6;
    std::uint64_t w = words[word] & (~0ULL << (from & 63));
    const std::uint32_t nwords = limit >> 6;
    while (true) {
        if (w != 0)
            return (word << 6) +
                static_cast<std::uint32_t>(__builtin_ctzll(w));
        if (++word >= nwords)
            return CylinderBuckets::kNil;
        w = words[word];
    }
}

} // namespace

void
CylinderBuckets::configure(std::uint32_t cylinders)
{
    sim::simAssert(cylinders >= 1, "cyl-index: empty cylinder range");
    width_ = (cylinders + kBuckets - 1) / kBuckets;
    if (width_ == 0)
        width_ = 1;
    size_ = 0;
    for (auto &w : occupied_)
        w = 0;
    for (auto &h : heads_)
        h = kNil;
    for (auto &c : cyl_)
        c = kNil;
}

void
CylinderBuckets::ensureSlots(std::size_t n)
{
    if (next_.size() >= n)
        return;
    next_.resize(n, kNil);
    prev_.resize(n, kNil);
    cyl_.resize(n, kNil);
}

void
CylinderBuckets::insert(std::uint32_t slot, std::uint32_t cylinder)
{
    sim::simAssert(slot < cyl_.size() && cyl_[slot] == kNil,
                   "cyl-index: bad insert");
    const std::uint32_t b = bucketOf(cylinder);
    cyl_[slot] = cylinder;
    prev_[slot] = kNil;
    next_[slot] = heads_[b];
    if (heads_[b] != kNil)
        prev_[heads_[b]] = slot;
    else
        occupied_[b >> 6] |= 1ULL << (b & 63);
    heads_[b] = slot;
    ++size_;
}

void
CylinderBuckets::remove(std::uint32_t slot)
{
    sim::simAssert(slot < cyl_.size() && cyl_[slot] != kNil,
                   "cyl-index: bad remove");
    const std::uint32_t b = bucketOf(cyl_[slot]);
    if (prev_[slot] != kNil)
        next_[prev_[slot]] = next_[slot];
    else
        heads_[b] = next_[slot];
    if (next_[slot] != kNil)
        prev_[next_[slot]] = prev_[slot];
    if (heads_[b] == kNil)
        occupied_[b >> 6] &= ~(1ULL << (b & 63));
    next_[slot] = kNil;
    prev_[slot] = kNil;
    cyl_[slot] = kNil;
    --size_;
}

std::uint32_t
CylinderBuckets::minDistance(std::uint32_t bucket,
                             std::uint32_t origin_cyl) const
{
    const std::uint32_t lo = bucket * width_;
    const std::uint32_t hi = lo + width_ - 1;
    if (origin_cyl < lo)
        return lo - origin_cyl;
    if (origin_cyl > hi)
        return origin_cyl - hi;
    return 0;
}

CylinderBuckets::Scan
CylinderBuckets::beginScan(std::uint32_t cylinder) const
{
    Scan scan;
    scan.origin = cylinder;
    const std::uint32_t b = bucketOf(cylinder);
    scan.down = static_cast<std::int32_t>(b);
    scan.up = b + 1;
    return scan;
}

bool
CylinderBuckets::nextBucket(Scan &scan, std::uint32_t &bucket,
                            std::uint32_t &min_dist) const
{
    const std::int32_t down = scanDown(occupied_, scan.down);
    const std::uint32_t up = scanUp(occupied_, scan.up, kBuckets);
    if (down < 0 && up == kNil)
        return false;
    const std::uint32_t dist_down = down >= 0
        ? minDistance(static_cast<std::uint32_t>(down), scan.origin)
        : kNil;
    const std::uint32_t dist_up =
        up != kNil ? minDistance(up, scan.origin) : kNil;
    if (dist_down <= dist_up) {
        bucket = static_cast<std::uint32_t>(down);
        min_dist = dist_down;
        scan.down = down - 1;
    } else {
        bucket = up;
        min_dist = dist_up;
        scan.up = up + 1;
    }
    return true;
}

std::uint32_t
CylinderBuckets::firstOccupiedAtOrAbove(std::uint32_t bucket) const
{
    return scanUp(occupied_, bucket, kBuckets);
}

} // namespace disk
} // namespace idp
