#include "disk/disk_drive.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "verify/verify.hh"

namespace idp {
namespace disk {

DiskDrive::DiskDrive(sim::Simulator &simul, const DriveSpec &spec,
                     CompletionFn on_complete)
    : sim_(simul),
      spec_(spec),
      geometry_(geom::DiskGeometry::build(spec.geometry)),
      seekModel_([&spec, this] {
          mech::SeekParams p = spec.seek;
          p.cylinders = geometry_.cylinders();
          return p;
      }()),
      spindle_(spec.rpm),
      cache_(spec.cache),
      scheduler_(sched::makeScheduler(spec.sched)),
      onComplete_(std::move(on_complete))
{
    spec_.normalize();
    const std::uint32_t n = spec_.dash.armAssemblies;
    sim::simAssert(spec_.armAzimuths.empty() ||
                       spec_.armAzimuths.size() == n,
                   "disk: armAzimuths must match the actuator count");
    arms_.resize(n);
    for (std::uint32_t k = 0; k < n; ++k) {
        arms_[k].azimuth = spec_.armAzimuths.empty()
            ? armAzimuth(k, n)
            : spec_.armAzimuths[k];
        arms_[k].cylinder =
            static_cast<std::uint32_t>(static_cast<std::uint64_t>(k) *
                                       geometry_.cylinders() / n);
    }
    stats_.armAccesses.assign(n, 0);
    ctrMediaAccesses_ = telemetry::counterHandle("disk.media_accesses");
    ctrCacheHits_ = telemetry::counterHandle("disk.cache_hits");
    ctrChannelBlocks_ = telemetry::counterHandle("disk.channel_blocks");
    ctrZeroLatHits_ = telemetry::counterHandle("disk.zero_latency_hits");
    ctrSpinUps_ = telemetry::counterHandle("disk.spin_ups");
    nextInternalId_ = 1;
    headSwitchTicks_ = sim::msToTicks(spec_.headSwitchMs);
    controllerTicks_ = sim::msToTicks(spec_.controllerOverheadMs);
    faultRng_ = sim::Rng(spec_.faultSeed);
}

std::uint32_t
DiskDrive::armCylinder(std::uint32_t k) const
{
    sim::simAssert(k < arms_.size(), "armCylinder: bad arm index");
    return arms_[k].cylinder;
}

void
DiskDrive::failArm(std::uint32_t k)
{
    sim::simAssert(k < arms_.size(), "failArm: bad arm index");
    sim::simAssert(aliveArms() > 1 || arms_[k].failed,
                   "failArm: cannot deconfigure the last healthy arm");
    arms_[k].failed = true;
}

std::uint32_t
DiskDrive::aliveArms() const
{
    std::uint32_t alive = 0;
    for (const auto &arm : arms_)
        if (!arm.failed)
            ++alive;
    return alive;
}

sim::Tick
DiskDrive::busTicks(std::uint32_t sectors) const
{
    const double bytes =
        static_cast<double>(sectors) * geom::kSectorBytes;
    const double secs = bytes / (spec_.busMBps * 1e6);
    return controllerTicks_ + sim::secondsToTicks(secs);
}

sim::Tick
DiskDrive::scaledSeek(std::uint32_t from, std::uint32_t to,
                      bool is_write) const
{
    const std::uint32_t dist = from > to ? from - to : to - from;
    const sim::Tick raw = seekModel_.seekTicks(dist, is_write);
    return static_cast<sim::Tick>(static_cast<double>(raw) *
                                  spec_.seekScale);
}

sim::Tick
DiskDrive::scaledRotWait(sim::Tick at, const geom::Chs &chs,
                         double azimuth) const
{
    const double angle = geometry_.sectorAngle(chs);
    const sim::Tick raw = spindle_.waitFor(at, angle, azimuth);
    return static_cast<sim::Tick>(static_cast<double>(raw) *
                                  spec_.rotScale);
}

sim::Tick
DiskDrive::armRotWait(sim::Tick at, const geom::Chs &chs,
                      std::uint32_t arm_index) const
{
    const std::uint32_t heads = spec_.dash.headsPerArm;
    const double base = arms_[arm_index].azimuth;
    if (heads <= 1)
        return scaledRotWait(at, chs, base);
    // Heads on one arm are staggered so the combined head set of the
    // whole drive covers the circumference evenly.
    const double spacing =
        1.0 / (static_cast<double>(arms_.size()) * heads);
    sim::Tick best = scaledRotWait(at, chs, base);
    for (std::uint32_t j = 1; j < heads; ++j) {
        const sim::Tick w =
            scaledRotWait(at, chs, base + j * spacing);
        if (w < best)
            best = w;
    }
    return best;
}

sim::Tick
DiskDrive::transferTicks(const geom::Chs &start,
                         std::uint32_t sectors) const
{
    sim::Tick ticks = 0;
    geom::Chs cur = start;
    std::uint32_t remaining = sectors;
    while (remaining > 0) {
        const std::uint32_t spt =
            geometry_.sectorsPerTrack(cur.cylinder);
        const std::uint32_t avail = spt - cur.sector;
        const std::uint32_t take = std::min(remaining, avail);
        ticks += spindle_.sweepTicks(static_cast<double>(take) /
                                     static_cast<double>(spt));
        remaining -= take;
        if (remaining == 0)
            break;
        cur.sector = 0;
        if (++cur.head >= geometry_.surfaces()) {
            cur.head = 0;
            if (cur.cylinder + 1 >= geometry_.cylinders())
                break; // ran off the end; truncated transfer
            ++cur.cylinder;
            ticks += seekModel_.seekTicks(1, false);
        } else {
            ticks += headSwitchTicks_;
        }
    }
    return ticks;
}

sim::Tick
DiskDrive::positioningEstimate(const sched::PendingView &req,
                               const sched::ArmView &arm) const
{
    const sim::Tick seek =
        scaledSeek(arm.cylinder, req.cylinder, !req.isRead);
    const geom::Chs chs = geometry_.lbaToChs(req.lba);
    const sim::Tick rot = armRotWait(sim_.now() + seek, chs, arm.index);
    return seek + rot;
}

void
DiskDrive::submit(const workload::IoRequest &req)
{
    ++stats_.arrivals;
    if (req.isRead)
        ++stats_.reads;
    sim::simAssert(req.sectors > 0, "disk: empty request");
    sim::simAssert(req.lba + req.sectors <= geometry_.totalSectors(),
                   "disk: request beyond device capacity");
    verify::onDiskSubmit(telemetryId_, req.id, req.arrival,
                         sim_.now());

    if (req.isRead) {
        const bool hit = cache_.readLookup(req.lba, req.sectors);
        telemetry::emitInstant(req.id, telemetry::SpanKind::CacheLookup,
                               sim_.now(), telemetryId_, hit ? 1 : 0);
        if (hit) {
            ++stats_.cacheHits;
            telemetry::bump(ctrCacheHits_);
            const sim::Tick done = sim_.now() + busTicks(req.sectors);
            telemetry::emitSpan(req.id, telemetry::SpanKind::CacheHit,
                                sim_.now(), done, telemetryId_);
            workload::IoRequest copy = req;
            sim_.schedule(done, [this, copy, done] {
                ++stats_.completions;
                ServiceInfo info;
                info.cacheHit = true;
                const double ms =
                    sim::ticksToMs(done - copy.arrival);
                stats_.responseMs.add(ms);
                stats_.responseHist.add(ms);
                verify::onDiskComplete(telemetryId_, copy.id, done,
                                       controllerTicks_);
                if (onComplete_)
                    onComplete_(copy, done, info);
            });
            return;
        }
    } else {
        if (cache_.write(req.lba, req.sectors)) {
            // Write-back absorbed the write; destage happens later.
            telemetry::bump(ctrCacheHits_);
            const sim::Tick done = sim_.now() + busTicks(req.sectors);
            telemetry::emitSpan(req.id, telemetry::SpanKind::CacheHit,
                                sim_.now(), done, telemetryId_);
            workload::IoRequest copy = req;
            sim_.schedule(done, [this, copy, done] {
                ++stats_.completions;
                ServiceInfo info;
                info.cacheHit = true;
                const double ms =
                    sim::ticksToMs(done - copy.arrival);
                stats_.responseMs.add(ms);
                stats_.responseHist.add(ms);
                verify::onDiskComplete(telemetryId_, copy.id, done,
                                       controllerTicks_);
                if (onComplete_)
                    onComplete_(copy, done, info);
            });
            maybeDestage();
            return;
        }
    }

    Pending pending;
    pending.req = req;
    pending.cylinder = geometry_.lbaToChs(req.lba).cylinder;
    if (req.background)
        pendingBg_.push_back(pending);
    else
        pending_.push_back(pending);
    beginSpinUpIfNeeded();
    tryDispatch();
}

void
DiskDrive::armIdleTimer()
{
    if (spec_.spinDownAfterMs <= 0.0 || modes_.spunDown() ||
        spinningUp_ || !idle())
        return;
    sim_.cancel(idleTimer_);
    idleTimer_ = sim_.scheduleAfter(
        sim::msToTicks(spec_.spinDownAfterMs),
        [this] { onIdleTimeout(); });
}

void
DiskDrive::onIdleTimeout()
{
    idleTimer_ = sim::kInvalidEventId;
    if (!idle() || modes_.spunDown() || spinningUp_)
        return;
    modes_.spinDown(sim_.now());
    ++stats_.spinDowns;
}

void
DiskDrive::beginSpinUpIfNeeded()
{
    sim_.cancel(idleTimer_);
    idleTimer_ = sim::kInvalidEventId;
    if (!modes_.spunDown() || spinningUp_)
        return;
    spinningUp_ = true;
    ++stats_.spinUps;
    telemetry::bump(ctrSpinUps_);
    telemetry::emitSpan(0, telemetry::SpanKind::SpinUp, sim_.now(),
                        sim_.now() + sim::msToTicks(spec_.spinUpMs),
                        telemetryId_);
    sim_.scheduleAfter(sim::msToTicks(spec_.spinUpMs), [this] {
        modes_.spinUp(sim_.now());
        spinningUp_ = false;
        tryDispatch();
    });
}

std::uint32_t
DiskDrive::totalSectors(const Active &active) const
{
    std::uint32_t total = active.req.sectors;
    for (const auto &rider : active.riders)
        total += rider.sectors;
    return total;
}

void
DiskDrive::tryDispatch()
{
    if (modes_.spunDown() || spinningUp_)
        return;
    while ((!pending_.empty() || !pendingBg_.empty()) &&
           activeSeeks_ < spec_.maxConcurrentSeeks) {
        // Collect idle arms.
        std::vector<sched::ArmView> idle_arms;
        for (std::uint32_t k = 0; k < arms_.size(); ++k) {
            if (!arms_[k].busy && !arms_[k].failed)
                idle_arms.push_back(
                    {k, arms_[k].cylinder, arms_[k].azimuth});
        }
        if (idle_arms.empty())
            return;

        // Materialize the scheduling window (oldest first).
        // Foreground requests have strict priority: background work
        // (and destages) is scheduled only when no foreground request
        // is pending — the freeblock-scheduling role the paper's
        // Section 5 assigns to spare arms.
        std::list<Pending> &source =
            pending_.empty() ? pendingBg_ : pending_;
        std::vector<std::list<Pending>::iterator> window_iters;
        std::vector<sched::PendingView> window;
        std::uint32_t slot = 0;
        for (auto it = source.begin();
             it != source.end() && slot < spec_.schedWindow;
             ++it, ++slot) {
            window_iters.push_back(it);
            window.push_back({slot, it->req.lba, it->cylinder,
                              it->req.arrival, it->req.isRead});
        }

        const sched::PositioningFn oracle =
            [this](const sched::PendingView &r, const sched::ArmView &a) {
                return positioningEstimate(r, a);
            };
        const sched::Choice choice =
            scheduler_->select(window, idle_arms, oracle, sim_.now());
        sim::simAssert(choice.slot < window.size(),
                       "disk: scheduler chose bad slot");
        sim::simAssert(choice.arm < arms_.size() &&
                           !arms_[choice.arm].busy,
                       "disk: scheduler chose busy arm");

        Active active;
        active.req = window_iters[choice.slot]->req;
        active.internal = window_iters[choice.slot]->internal;
        active.arm = choice.arm;
        source.erase(window_iters[choice.slot]);

        if (spec_.coalesce) {
            // Fold exactly-contiguous same-kind queued requests into
            // this media access (they complete with it).
            geom::Lba next_lba = active.req.lba + active.req.sectors;
            bool merged = true;
            while (merged &&
                   active.riders.size() + 1 < spec_.coalesceLimit) {
                merged = false;
                for (auto it = source.begin(); it != source.end();
                     ++it) {
                    if (it->req.lba == next_lba &&
                        it->req.isRead == active.req.isRead &&
                        !it->internal) {
                        next_lba += it->req.sectors;
                        active.riders.push_back(it->req);
                        source.erase(it);
                        merged = true;
                        break;
                    }
                }
            }
        }
        startService(std::move(active));
    }
}

void
DiskDrive::startService(Active active)
{
    const sim::Tick now = sim_.now();
    active.chs = geometry_.lbaToChs(active.req.lba);
    active.dispatchTime = now;
    Arm &arm = arms_[active.arm];
    arm.busy = true;

    active.seekTicks = scaledSeek(arm.cylinder, active.chs.cylinder,
                                  !active.req.isRead);

    const std::uint64_t id = nextInternalId_++;
    modes_.requestStart(now);
    ++stats_.mediaAccesses;
    ++stats_.armAccesses[active.arm];
    telemetry::bump(ctrMediaAccesses_);
    telemetry::emitSpan(active.req.id, telemetry::SpanKind::HostQueue,
                        active.req.arrival, now, telemetryId_,
                        static_cast<std::uint16_t>(active.arm));
    telemetry::emitInstant(active.req.id,
                           telemetry::SpanKind::ArmSelect, now,
                           telemetryId_,
                           static_cast<std::uint16_t>(active.arm));
    if (active.seekTicks > 0)
        ++stats_.nonzeroSeeks;

    const bool needs_motion = active.seekTicks > 0;
    active.phase = Phase::Seeking;
    active_.emplace(id, std::move(active));

    if (needs_motion) {
        ++activeSeeks_;
        modes_.seekStart(now);
        sim_.schedule(now + active_.at(id).seekTicks,
                      [this, id] { onSeekDone(id); });
    } else {
        startRotation(id);
    }
    verifyOccupancy();
}

void
DiskDrive::verifyOccupancy() const
{
    if (verify::activeChecker() == nullptr)
        return;
    std::uint32_t busy_arms = 0;
    for (const auto &arm : arms_)
        if (arm.busy)
            ++busy_arms;
    verify::onDiskOccupancy(
        telemetryId_, active_.size(), busy_arms,
        static_cast<std::uint32_t>(arms_.size()), activeSeeks_,
        spec_.maxConcurrentSeeks, activeTransfers_,
        spec_.maxConcurrentTransfers);
}

void
DiskDrive::onSeekDone(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    Active &active = active_.at(id);
    sim::simAssert(activeSeeks_ > 0, "disk: seek budget underflow");
    --activeSeeks_;
    modes_.seekEnd(now);
    telemetry::emitSpan(active.req.id, telemetry::SpanKind::Seek,
                        now - active.seekTicks, now, telemetryId_,
                        static_cast<std::uint16_t>(active.arm));
    startRotation(id);
    // Freed motion budget may admit the next pending request.
    tryDispatch();
    (void)active;
}

void
DiskDrive::startRotation(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    Active &active = active_.at(id);
    Arm &arm = arms_[active.arm];
    arm.cylinder = active.chs.cylinder;

    active.phase = Phase::Rotating;

    if (spec_.zeroLatencyAccess && active.riders.empty()) {
        // Single-track run already under the head? Start now and
        // wrap: the whole access takes one revolution.
        const std::uint32_t spt =
            geometry_.sectorsPerTrack(active.chs.cylinder);
        const std::uint32_t total = totalSectors(active);
        if (active.chs.sector + total <= spt) {
            const double extent = static_cast<double>(total) /
                static_cast<double>(spt);
            const sim::Tick to_start = scaledRotWait(
                now, active.chs, arms_[active.arm].azimuth);
            const sim::Tick period = spindle_.periodTicks();
            const sim::Tick run_ticks = spindle_.sweepTicks(extent);
            if (to_start + run_ticks > period) {
                // The head is inside the run right now.
                ++stats_.zeroLatencyHits;
                telemetry::bump(ctrZeroLatHits_);
                active.xferOverride = period;
                onRotationDone(id);
                return;
            }
        }
    }

    const sim::Tick wait = armRotWait(now, active.chs, active.arm);
    active.rotTicks += wait;
    if (wait > 0) {
        telemetry::emitSpan(active.req.id,
                            telemetry::SpanKind::RotWait, now,
                            now + wait, telemetryId_,
                            static_cast<std::uint16_t>(active.arm));
        sim_.schedule(now + wait, [this, id] { onRotationDone(id); });
    } else {
        onRotationDone(id);
    }
}

void
DiskDrive::onRotationDone(std::uint64_t id)
{
    Active &active = active_.at(id);
    active.phase = Phase::ChannelWait;
    tryStartTransfer(id);
}

void
DiskDrive::tryStartTransfer(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    Active &active = active_.at(id);
    if (activeTransfers_ >= spec_.maxConcurrentTransfers) {
        channelWaiters_.push_back(id);
        active.channelWaitFrom = now;
        telemetry::bump(ctrChannelBlocks_);
        return;
    }
    ++activeTransfers_;
    modes_.transferStart(now);
    active.phase = Phase::Transferring;
    // The DASH S dimension streams from several surfaces at once,
    // dividing the media-transfer portion of the service time.
    const std::uint32_t s_par =
        std::max<std::uint32_t>(1, spec_.dash.surfaces);
    if (active.xferOverride > 0)
        active.xferTicks =
            active.xferOverride / s_par + controllerTicks_;
    else
        active.xferTicks =
            transferTicks(active.chs, totalSectors(active)) / s_par +
            controllerTicks_;
    telemetry::emitSpan(active.req.id, telemetry::SpanKind::Transfer,
                        now, now + active.xferTicks, telemetryId_,
                        static_cast<std::uint16_t>(active.arm));
    sim_.schedule(now + active.xferTicks,
                  [this, id] { onTransferDone(id); });
}

void
DiskDrive::onTransferDone(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    sim::simAssert(activeTransfers_ > 0,
                   "disk: channel budget underflow");
    --activeTransfers_;
    modes_.transferEnd(now);

    // Fault injection: a failed media transfer re-reads after one
    // full revolution (the sector must come around again), holding
    // the arm but releasing the channel while it waits.
    {
        Active &active = active_.at(id);
        if (spec_.mediaRetryRate > 0.0 &&
            active.retries < spec_.maxRetries &&
            faultRng_.chance(spec_.mediaRetryRate)) {
            ++active.retries;
            ++stats_.mediaRetries;
            const sim::Tick rev = spindle_.periodTicks();
            active.rotTicks += rev;
            active.phase = Phase::Rotating;
            telemetry::emitSpan(
                active.req.id, telemetry::SpanKind::RotWait, now,
                now + rev, telemetryId_,
                static_cast<std::uint16_t>(active.arm));
            sim_.schedule(now + rev,
                          [this, id] { onRotationDone(id); });
            // The freed channel may admit a waiter immediately.
            if (!channelWaiters_.empty() &&
                activeTransfers_ < spec_.maxConcurrentTransfers) {
                const std::uint64_t wid = channelWaiters_.front();
                channelWaiters_.erase(channelWaiters_.begin());
                Active &waiter = active_.at(wid);
                if (waiter.channelWaitFrom != sim::kTickNever) {
                    telemetry::emitSpan(
                        waiter.req.id,
                        telemetry::SpanKind::ChannelWait,
                        waiter.channelWaitFrom, now, telemetryId_,
                        static_cast<std::uint16_t>(waiter.arm));
                    waiter.channelWaitFrom = sim::kTickNever;
                }
                const sim::Tick extra = armRotWait(
                    now, waiter.chs, waiter.arm);
                waiter.rotTicks += extra;
                waiter.phase = Phase::Rotating;
                if (extra > 0)
                    telemetry::emitSpan(
                        waiter.req.id, telemetry::SpanKind::RotWait,
                        now, now + extra, telemetryId_,
                        static_cast<std::uint16_t>(waiter.arm));
                sim_.schedule(now + extra,
                              [this, wid] { onRotationDone(wid); });
            }
            return;
        }
    }

    completeActive(id);

    // Wake the oldest channel waiter; its sector has rotated past, so
    // it must re-wait for the platter to come around again.
    if (!channelWaiters_.empty() &&
        activeTransfers_ < spec_.maxConcurrentTransfers) {
        const std::uint64_t wid = channelWaiters_.front();
        channelWaiters_.erase(channelWaiters_.begin());
        Active &waiter = active_.at(wid);
        if (waiter.channelWaitFrom != sim::kTickNever) {
            telemetry::emitSpan(
                waiter.req.id, telemetry::SpanKind::ChannelWait,
                waiter.channelWaitFrom, now, telemetryId_,
                static_cast<std::uint16_t>(waiter.arm));
            waiter.channelWaitFrom = sim::kTickNever;
        }
        const sim::Tick extra =
            armRotWait(now, waiter.chs, waiter.arm);
        waiter.rotTicks += extra;
        waiter.phase = Phase::Rotating;
        if (extra > 0) {
            telemetry::emitSpan(
                waiter.req.id, telemetry::SpanKind::RotWait, now,
                now + extra, telemetryId_,
                static_cast<std::uint16_t>(waiter.arm));
            sim_.schedule(now + extra,
                          [this, wid] { onRotationDone(wid); });
        } else {
            onRotationDone(wid);
        }
    }
}

void
DiskDrive::completeActive(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    Active active = std::move(active_.at(id));
    active_.erase(id);
    modes_.requestEnd(now);
    arms_[active.arm].busy = false;
    verifyOccupancy();

    if (active.req.isRead)
        cache_.installRead(active.req.lba, totalSectors(active));

    if (active.internal) {
        ++stats_.destages;
    } else {
        ServiceInfo info;
        info.seekTicks = active.seekTicks;
        info.rotTicks = active.rotTicks;
        info.xferTicks = active.xferTicks;
        info.queueTicks = active.dispatchTime - active.req.arrival;
        info.arm = active.arm;
        info.cacheHit = false;
        if (spec_.mediaRetryRate > 0.0 &&
            active.retries >= spec_.maxRetries) {
            info.failed = true;
            ++stats_.hardErrors;
        }

        auto record = [&](const workload::IoRequest &req) {
            ++stats_.completions;
            if (req.background)
                ++stats_.backgroundCompletions;
            const double resp_ms = sim::ticksToMs(now - req.arrival);
            stats_.responseMs.add(resp_ms);
            stats_.responseHist.add(resp_ms);
            stats_.seekMs.add(sim::ticksToMs(active.seekTicks));
            const double rot_ms = sim::ticksToMs(active.rotTicks);
            stats_.rotMs.add(rot_ms);
            stats_.rotHist.add(rot_ms);
            verify::onDiskComplete(telemetryId_, req.id, now,
                                   controllerTicks_);
            if (onComplete_)
                onComplete_(req, now, info);
        };
        record(active.req);
        stats_.coalescedRequests += active.riders.size();
        for (const auto &rider : active.riders)
            record(rider);
    }

    tryDispatch();
    maybeDestage();
    armIdleTimer();
}

void
DiskDrive::maybeDestage()
{
    if (!spec_.cache.writeBack)
        return;
    if (!pending_.empty() || !pendingBg_.empty() || !active_.empty())
        return;
    auto dirty = cache_.popDirty();
    if (!dirty)
        return;
    Pending pending;
    pending.req.id = 0;
    pending.req.arrival = sim_.now();
    pending.req.lba = dirty->lba;
    pending.req.sectors = dirty->sectors;
    pending.req.isRead = false;
    pending.cylinder = geometry_.lbaToChs(dirty->lba).cylinder;
    pending.internal = true;
    pendingBg_.push_back(pending);
    beginSpinUpIfNeeded();
    tryDispatch();
}

stats::ModeTimes
DiskDrive::finishModeTimes()
{
    return modes_.finish(sim_.now());
}

stats::ModeTimes
DiskDrive::modeTimesSnapshot() const
{
    return modes_.snapshot(sim_.now());
}

} // namespace disk
} // namespace idp
