#include "disk/disk_drive.hh"

#include <algorithm>
#include <functional>

#include "sim/logging.hh"
#include "verify/verify.hh"

namespace idp {
namespace disk {

DiskDrive::DiskDrive(sim::Simulator &simul, const DriveSpec &spec,
                     CompletionFn on_complete)
    : sim_(simul),
      spec_(spec),
      geometry_(geom::DiskGeometry::build(spec.geometry)),
      seekModel_([&spec, this] {
          mech::SeekParams p = spec.seek;
          p.cylinders = geometry_.cylinders();
          return p;
      }()),
      spindle_(spec.rpm),
      cache_(spec.cache),
      scheduler_(sched::makeScheduler(spec.sched)),
      onComplete_(std::move(on_complete))
{
    spec_.normalize();
    const std::uint32_t n = spec_.dash.armAssemblies;
    sim::simAssert(spec_.armAzimuths.empty() ||
                       spec_.armAzimuths.size() == n,
                   "disk: armAzimuths must match the actuator count");
    arms_.resize(n);
    for (std::uint32_t k = 0; k < n; ++k) {
        arms_[k].azimuth = spec_.armAzimuths.empty()
            ? armAzimuth(k, n)
            : spec_.armAzimuths[k];
        arms_[k].cylinder =
            static_cast<std::uint32_t>(static_cast<std::uint64_t>(k) *
                                       geometry_.cylinders() / n);
    }
    stats_.armAccesses.assign(n, 0);
    ctrMediaAccesses_ = telemetry::counterHandle("disk.media_accesses");
    ctrCacheHits_ = telemetry::counterHandle("disk.cache_hits");
    ctrChannelBlocks_ = telemetry::counterHandle("disk.channel_blocks");
    ctrZeroLatHits_ = telemetry::counterHandle("disk.zero_latency_hits");
    ctrSpinUps_ = telemetry::counterHandle("disk.spin_ups");
    headSwitchTicks_ = sim::msToTicks(spec_.headSwitchMs);
    controllerTicks_ = sim::msToTicks(spec_.controllerOverheadMs);
    faultRng_ = sim::Rng(spec_.faultSeed);
    window_.reserve(spec_.schedWindow);
    idleArms_.reserve(n);
    fgList_.index.configure(geometry_.cylinders());
    bgList_.index.configure(geometry_.cylinders());
    // FCFS keys on age alone — nothing for a cylinder index to
    // prune — so it keeps the materialized exhaustive path.
    schedIndexed_ = spec_.schedPrune && sched::pruneEnabledFromEnv() &&
        spec_.sched.policy != sched::Policy::Fcfs;
    oracle_ = [this](const sched::PendingView &r,
                     const sched::ArmView &a) {
        return cachedPositioning(r, a);
    };
    estServiceTicks_ = seekLbTicks(geometry_.cylinders() / 3) +
        spindle_.periodTicks() / 2;
    desiredRpm_ = spec_.rpm;
    // The geometry builder tapers sectors/track linearly from the
    // outermost zone inward, so cylinder 0 carries the densest track
    // (the fastest one-sector sweep the drive can ever do).
    maxSpt_ = geometry_.sectorsPerTrack(0);
}

sim::Tick
DiskDrive::readPriceTicks(geom::Lba lba, std::uint32_t sectors) const
{
    sim::simAssert(lba + sectors <= geometry_.totalSectors(),
                   "readPriceTicks: request beyond disk capacity");
    const geom::Chs chs = geometry_.lbaToChs(lba);
    const double angle = geometry_.sectorAngle(chs);
    const sim::Tick now = sim_.now();
    sim::Tick best = sim::kTickNever;
    for (std::uint32_t k = 0;
         k < static_cast<std::uint32_t>(arms_.size()); ++k) {
        if (arms_[k].failed || arms_[k].parked)
            continue;
        const std::uint32_t cyl = arms_[k].cylinder;
        const std::uint32_t dist =
            cyl > chs.cylinder ? cyl - chs.cylinder : chs.cylinder - cyl;
        const sim::Tick seek = seekLbTicks(dist);
        const sim::Tick rot = armRotWaitAngle(now + seek, angle, k);
        best = std::min(best, seek + rot);
    }
    sim::simAssert(best != sim::kTickNever,
                   "readPriceTicks: no healthy arm");
    const std::uint64_t backlog = queueDepth() + activeCount_;
    return best + transferTicks(chs, sectors) +
        static_cast<sim::Tick>(backlog) * estServiceTicks_;
}

std::uint32_t
DiskDrive::armCylinder(std::uint32_t k) const
{
    sim::simAssert(k < arms_.size(), "armCylinder: bad arm index");
    return arms_[k].cylinder;
}

void
DiskDrive::failArm(std::uint32_t k)
{
    sim::simAssert(k < arms_.size(), "failArm: bad arm index");
    sim::simAssert(aliveArms() > 1 || arms_[k].failed,
                   "failArm: cannot deconfigure the last healthy arm");
    arms_[k].failed = true;
}

std::uint32_t
DiskDrive::aliveArms() const
{
    std::uint32_t alive = 0;
    for (const auto &arm : arms_)
        if (!arm.failed)
            ++alive;
    return alive;
}

void
DiskDrive::parkArm(std::uint32_t k)
{
    sim::simAssert(k < arms_.size(), "parkArm: bad arm index");
    Arm &arm = arms_[k];
    sim::simAssert(!arm.failed, "parkArm: arm is deconfigured");
    sim::simAssert(!arm.busy, "parkArm: arm is mid-service");
    if (arm.parked)
        return;
    std::uint32_t serviceable = 0;
    for (const auto &a : arms_)
        if (!a.failed && !a.parked)
            ++serviceable;
    sim::simAssert(serviceable > 1,
                   "parkArm: cannot park the last serviceable arm");
    arm.parked = true;
    ++stats_.armParks;
    modes_.armParked(sim_.now());
}

void
DiskDrive::unparkArm(std::uint32_t k)
{
    sim::simAssert(k < arms_.size(), "unparkArm: bad arm index");
    Arm &arm = arms_[k];
    if (!arm.parked)
        return;
    arm.parked = false;
    ++stats_.armUnparks;
    modes_.armUnparked(sim_.now());
    tryDispatch();
}

std::uint32_t
DiskDrive::parkedArms() const
{
    std::uint32_t parked = 0;
    for (const auto &arm : arms_)
        if (arm.parked)
            ++parked;
    return parked;
}

bool
DiskDrive::armParked(std::uint32_t k) const
{
    sim::simAssert(k < arms_.size(), "armParked: bad arm index");
    return arms_[k].parked;
}

bool
DiskDrive::armBusy(std::uint32_t k) const
{
    sim::simAssert(k < arms_.size(), "armBusy: bad arm index");
    return arms_[k].busy;
}

void
DiskDrive::requestRpm(std::uint32_t rpm)
{
    sim::simAssert(rpm > 0, "requestRpm: rpm must be > 0");
    if (rpm == desiredRpm_)
        return;
    desiredRpm_ = rpm;
    maybeStartRpmShift();
}

void
DiskDrive::maybeStartRpmShift()
{
    if (rpmShifting_ || spinningDown_ || spinningUp_ ||
        desiredRpm_ == spindle_.rpm())
        return;
    if (modes_.spunDown()) {
        // The spindle is stopped: record the new speed now at no ramp
        // cost — the upcoming spin-up pays the acceleration either
        // way. The segment change keeps standby billing correct (a
        // stopped spindle draws no speed-dependent power).
        applyRpm(sim_.now(), desiredRpm_);
        return;
    }
    if (activeCount_ != 0)
        return; // drain first; completeActive retries
    sim_.cancel(idleTimer_);
    idleTimer_ = sim::kInvalidEventId;
    rpmShifting_ = true;
    shiftTo_ = desiredRpm_;
    ++stats_.rpmShifts;
    // The ramp is billed at the higher of the two speeds: open a
    // transition segment now, closed again when the new speed lands.
    modes_.rpmChange(sim_.now(),
                     std::max(spindle_.rpm(), shiftTo_));
    // The ramp nominally takes rpmShiftMs, but the drive re-enters
    // service only when the servo confirms the new speed at the next
    // index-mark pass. Snapping the end to a rotation boundary also
    // keeps ramp completions off the exact millisecond grid where
    // control-loop and arrival events live (a rotation period is
    // never an integral ms), so a ramp end cannot systematically
    // share a tick with a governor decision.
    const sim::Tick nominal = sim::msToTicks(spec_.rpmShiftMs);
    const sim::Tick ramp = nominal +
        spindle_.waitFor(sim_.now() + nominal, 0.0, 0.0);
    telemetry::emitSpan(0, telemetry::SpanKind::SpinUp, sim_.now(),
                        sim_.now() + ramp, telemetryId_);
    sim_.scheduleAfter(ramp, [this] { completeRpmShift(); });
}

void
DiskDrive::completeRpmShift()
{
    rpmShifting_ = false;
    applyRpm(sim_.now(), shiftTo_);
    // The governor may have retargeted mid-ramp.
    maybeStartRpmShift();
    tryDispatch();
    maybeDestage();
    armIdleTimer();
}

void
DiskDrive::applyRpm(sim::Tick now, std::uint32_t rpm)
{
    spindle_.setRpm(now, rpm);
    modes_.rpmChange(now, rpm);
    // Re-derive every period-derived constant cached across the run.
    estServiceTicks_ = seekLbTicks(geometry_.cylinders() / 3) +
        spindle_.periodTicks() / 2;
    // Positioning-cost cache: the rotational halves were computed
    // under the old period (and the seek halves are cheap) — drop
    // everything rather than reason about which rows survive.
    for (auto &e : costCache_) {
        e.seekValid = false;
        e.rotValid = false;
    }
}

sim::Tick
DiskDrive::busTicks(std::uint32_t sectors) const
{
    const double bytes =
        static_cast<double>(sectors) * geom::kSectorBytes;
    const double secs = bytes / (spec_.busMBps * 1e6);
    return controllerTicks_ + sim::secondsToTicks(secs);
}

sim::Tick
DiskDrive::minTransferFloorTicks() const
{
    const std::uint32_t s_par =
        std::max<std::uint32_t>(1, spec_.dash.surfaces);
    // Fastest RPM reachable without a new governor decision (which
    // only lands at a serial synchronization point): ramps start only
    // with no access in flight, so in-flight floors priced at the
    // current speed stay exact, while queued-work floors must assume
    // the pending or in-flight ramp lands first.
    const std::uint32_t cur = spindle_.rpm();
    std::uint32_t fast = std::max(cur, desiredRpm_);
    if (rpmShifting_)
        fast = std::max(fast, shiftTo_);
    sim::Tick sweep =
        spindle_.sweepTicks(1.0 / static_cast<double>(maxSpt_));
    if (fast > cur) {
        // Rescale the current-period sweep to the faster speed; shave
        // a tick to absorb the rounding and stay admissible.
        sweep = static_cast<sim::Tick>(static_cast<double>(sweep) *
                                       cur / fast);
        if (sweep > 0)
            --sweep;
    }
    return controllerTicks_ + sweep / s_par;
}

sim::Tick
DiskDrive::minServiceFloorTicks() const
{
    // A fresh delivery either returns from the cache (buffer-bus
    // path, RPM-independent) or goes to media.
    return std::min(busTicks(1), minTransferFloorTicks());
}

sim::Tick
DiskDrive::completionBoundTicks(sim::Tick round_start)
{
    while (!hitHeap_.empty() && hitHeap_.front() < round_start) {
        std::pop_heap(hitHeap_.begin(), hitHeap_.end(),
                      std::greater<sim::Tick>());
        hitHeap_.pop_back();
    }
    sim::Tick bound =
        hitHeap_.empty() ? sim::kTickNever : hitHeap_.front();
    const sim::Tick xfer_floor = minTransferFloorTicks();
    for (const Active &a : activePool_) {
        // Destage traffic completes drive-internally; any foreground
        // work it unblocks is covered by the queued-work floor.
        if (!a.inUse || a.internal)
            continue;
        sim::Tick floor = std::max(a.doneFloor, round_start);
        if (a.phase == Phase::ChannelWait)
            // The floor set at rotation start may be long past for a
            // blocked access; after it wakes it still re-waits and
            // transfers, so one minimum transfer from now is safe.
            floor = std::max(floor, round_start + xfer_floor);
        bound = std::min(bound, floor);
    }
    // Queued requests are cache misses (hits complete at submit), so
    // the tighter media floor applies: any dispatch happens at or
    // after round_start (the global minimum pending activity).
    if (fgList_.size != 0 || bgList_.size != 0)
        bound = std::min(bound, round_start + xfer_floor);
    return bound;
}

sim::Tick
DiskDrive::scaledSeek(std::uint32_t from, std::uint32_t to,
                      bool is_write) const
{
    const std::uint32_t dist = from > to ? from - to : to - from;
    const sim::Tick raw = seekModel_.seekTicks(dist, is_write);
    return static_cast<sim::Tick>(static_cast<double>(raw) *
                                  spec_.seekScale);
}

sim::Tick
DiskDrive::seekLbTicks(std::uint32_t dist) const
{
    if (dist == 0)
        return 0;
    // Read seek at that distance: admissible because a write seek
    // only adds settle time and the rotational wait is >= 0, and
    // monotone because the seek curve is.
    const sim::Tick raw = seekModel_.seekTicks(dist, false);
    return static_cast<sim::Tick>(static_cast<double>(raw) *
                                  spec_.seekScale);
}

sim::Tick
DiskDrive::scaledRotWait(sim::Tick at, const geom::Chs &chs,
                         double azimuth) const
{
    return scaledRotWaitAngle(at, geometry_.sectorAngle(chs), azimuth);
}

sim::Tick
DiskDrive::scaledRotWaitAngle(sim::Tick at, double angle,
                              double azimuth) const
{
    const sim::Tick raw = spindle_.waitFor(at, angle, azimuth);
    return static_cast<sim::Tick>(static_cast<double>(raw) *
                                  spec_.rotScale);
}

sim::Tick
DiskDrive::armRotWait(sim::Tick at, const geom::Chs &chs,
                      std::uint32_t arm_index) const
{
    return armRotWaitAngle(at, geometry_.sectorAngle(chs), arm_index);
}

sim::Tick
DiskDrive::armRotWaitAngle(sim::Tick at, double angle,
                           std::uint32_t arm_index) const
{
    const std::uint32_t heads = spec_.dash.headsPerArm;
    const double base = arms_[arm_index].azimuth;
    if (heads <= 1)
        return scaledRotWaitAngle(at, angle, base);
    // Heads on one arm are staggered so the combined head set of the
    // whole drive covers the circumference evenly.
    const double spacing =
        1.0 / (static_cast<double>(arms_.size()) * heads);
    sim::Tick best = scaledRotWaitAngle(at, angle, base);
    for (std::uint32_t j = 1; j < heads; ++j) {
        const sim::Tick w =
            scaledRotWaitAngle(at, angle, base + j * spacing);
        if (w < best)
            best = w;
    }
    return best;
}

sim::Tick
DiskDrive::transferTicks(const geom::Chs &start,
                         std::uint32_t sectors) const
{
    sim::Tick ticks = 0;
    geom::Chs cur = start;
    std::uint32_t remaining = sectors;
    while (remaining > 0) {
        const std::uint32_t spt =
            geometry_.sectorsPerTrack(cur.cylinder);
        const std::uint32_t avail = spt - cur.sector;
        const std::uint32_t take = std::min(remaining, avail);
        ticks += spindle_.sweepTicks(static_cast<double>(take) /
                                     static_cast<double>(spt));
        remaining -= take;
        if (remaining == 0)
            break;
        cur.sector = 0;
        if (++cur.head >= geometry_.surfaces()) {
            cur.head = 0;
            if (cur.cylinder + 1 >= geometry_.cylinders())
                break; // ran off the end; truncated transfer
            ++cur.cylinder;
            ticks += seekModel_.seekTicks(1, false);
        } else {
            ticks += headSwitchTicks_;
        }
    }
    return ticks;
}

std::uint32_t
DiskDrive::allocPending(const workload::IoRequest &req, bool internal)
{
    std::uint32_t slot;
    if (pendingFree_.empty()) {
        slot = static_cast<std::uint32_t>(pendingPool_.size());
        pendingPool_.emplace_back();
        // One cost-cache row (all arms) per arena slot, row-major.
        costCache_.resize(pendingPool_.size() * arms_.size());
        fgList_.index.ensureSlots(pendingPool_.size());
        bgList_.index.ensureSlots(pendingPool_.size());
        // The free list can hold every slot (drain phases); grow its
        // capacity here so releasePending never allocates.
        pendingFree_.reserve(pendingPool_.size());
    } else {
        slot = pendingFree_.back();
        pendingFree_.pop_back();
    }
    Pending &p = pendingPool_[slot];
    p.req = req;
    p.chs = geometry_.lbaToChs(req.lba);
    p.sectorAngle = geometry_.sectorAngle(p.chs);
    p.cylinder = p.chs.cylinder;
    p.internal = internal;
    ++p.gen; // retires any cost-cache rows from the prior occupancy
    p.next = kNilSlot;
    p.prev = kNilSlot;
    p.seq = 0;
    p.inWindow = false;
    return slot;
}

void
DiskDrive::releasePending(std::uint32_t slot)
{
    Pending &p = pendingPool_[slot];
    p.next = kNilSlot;
    p.prev = kNilSlot;
    pendingFree_.push_back(slot);
}

void
DiskDrive::listPushBack(PendingList &list, std::uint32_t slot)
{
    Pending &p = pendingPool_[slot];
    p.next = kNilSlot;
    p.prev = list.tail;
    if (list.tail != kNilSlot)
        pendingPool_[list.tail].next = slot;
    else
        list.head = slot;
    list.tail = slot;
    ++list.size;
    p.seq = ++enqueueSeq_;
    // The window is a list prefix: an appended slot joins it exactly
    // when the window is not yet full — then the whole list was
    // windowed, so the new tail extends the prefix.
    if (list.windowCount < spec_.schedWindow) {
        p.inWindow = true;
        ++list.windowCount;
        list.windowTail = slot;
        if (schedIndexed_)
            list.index.insert(slot, p.cylinder);
    } else {
        p.inWindow = false;
    }
}

void
DiskDrive::listUnlink(PendingList &list, std::uint32_t slot)
{
    Pending &p = pendingPool_[slot];
    const bool was_window = p.inWindow;
    if (was_window) {
        if (schedIndexed_)
            list.index.remove(slot);
        p.inWindow = false;
        --list.windowCount;
        if (list.windowTail == slot)
            list.windowTail = p.prev;
    }
    if (p.prev != kNilSlot)
        pendingPool_[p.prev].next = p.next;
    else
        list.head = p.next;
    if (p.next != kNilSlot)
        pendingPool_[p.next].prev = p.prev;
    else
        list.tail = p.prev;
    p.next = kNilSlot;
    p.prev = kNilSlot;
    --list.size;
    if (was_window) {
        // A removal inside the window promotes the first entry beyond
        // it (the window tail's successor; the new head when the
        // removed slot was the only window member).
        const std::uint32_t succ = list.windowTail == kNilSlot
            ? list.head
            : pendingPool_[list.windowTail].next;
        if (succ != kNilSlot) {
            Pending &q = pendingPool_[succ];
            q.inWindow = true;
            ++list.windowCount;
            list.windowTail = succ;
            if (schedIndexed_)
                list.index.insert(succ, q.cylinder);
        }
    }
}

std::uint64_t
DiskDrive::installActive(Active active)
{
    std::uint32_t slot;
    if (activeFree_.empty()) {
        slot = static_cast<std::uint32_t>(activePool_.size());
        activePool_.emplace_back();
    } else {
        slot = activeFree_.back();
        activeFree_.pop_back();
    }
    Active &dst = activePool_[slot];
    const std::uint32_t gen = dst.gen + 1;
    dst = std::move(active);
    dst.gen = gen;
    dst.inUse = true;
    ++activeCount_;
    return (static_cast<std::uint64_t>(gen) << 32) |
        (static_cast<std::uint64_t>(slot) + 1);
}

DiskDrive::Active &
DiskDrive::activeAt(std::uint64_t id)
{
    const std::uint64_t low = id & 0xffffffffULL;
    sim::simAssert(low != 0 && low <= activePool_.size(),
                   "disk: bad active id");
    Active &active = activePool_[static_cast<std::uint32_t>(low) - 1];
    sim::simAssert(active.gen == static_cast<std::uint32_t>(id >> 32),
                   "disk: stale active id");
    return active;
}

void
DiskDrive::releaseActive(std::uint64_t id)
{
    Active &active = activeAt(id);
    active.riders.clear();
    active.inUse = false;
    ++active.gen; // retires the id even before the slot is reused
    activeFree_.push_back(
        static_cast<std::uint32_t>(id & 0xffffffffULL) - 1);
    --activeCount_;
}

sim::Tick
DiskDrive::cachedPositioning(const sched::PendingView &req,
                             const sched::ArmView &arm)
{
    const std::uint32_t slot = req.slot;
    const Pending &p = pendingPool_[slot];
    CostEntry &e = costCache_[slot * arms_.size() + arm.index];
    if (e.gen != p.gen) {
        e.gen = p.gen;
        e.seekValid = false;
        e.rotValid = false;
    }
    if (!e.seekValid || e.armCyl != arm.cylinder) {
        e.seek = scaledSeek(arm.cylinder, p.cylinder, !p.req.isRead);
        e.armCyl = arm.cylinder;
        e.seekValid = true;
        // The rotational start time depends on the seek length.
        e.rotValid = false;
    }
    const sim::Tick now = sim_.now();
    if (!e.rotValid || e.evalAt != now) {
        e.rot = armRotWaitAngle(now + e.seek, p.sectorAngle, arm.index);
        e.evalAt = now;
        e.rotValid = true;
    }
    if (verify::activeChecker() != nullptr) {
        // The pruning / horizon lower bound must never exceed the
        // exact positioning price, including mid-RPM-ramp.
        const std::uint32_t dist = arm.cylinder > p.cylinder
            ? arm.cylinder - p.cylinder
            : p.cylinder - arm.cylinder;
        verify::onPositioningBound(telemetryId_, seekLbTicks(dist),
                                   e.seek + e.rot);
    }
    return e.seek + e.rot;
}

void
DiskDrive::submit(const workload::IoRequest &req)
{
    ++stats_.arrivals;
    if (req.isRead)
        ++stats_.reads;
    sim::simAssert(req.sectors > 0, "disk: empty request");
    sim::simAssert(req.lba + req.sectors <= geometry_.totalSectors(),
                   "disk: request beyond device capacity");
    verify::onDiskSubmit(telemetryId_, req.id, req.arrival,
                         sim_.now());

    if (req.isRead) {
        const bool hit = cache_.readLookup(req.lba, req.sectors);
        telemetry::emitInstant(req.id, telemetry::SpanKind::CacheLookup,
                               sim_.now(), telemetryId_, hit ? 1 : 0);
        if (hit) {
            ++stats_.cacheHits;
            telemetry::bump(ctrCacheHits_);
            const sim::Tick done = sim_.now() + busTicks(req.sectors);
            if (trackHitBounds_) {
                hitHeap_.push_back(done);
                std::push_heap(hitHeap_.begin(), hitHeap_.end(),
                               std::greater<sim::Tick>());
            }
            telemetry::emitSpan(req.id, telemetry::SpanKind::CacheHit,
                                sim_.now(), done, telemetryId_);
            workload::IoRequest copy = req;
            sim_.schedule(done, [this, copy, done] {
                ++stats_.completions;
                ServiceInfo info;
                info.cacheHit = true;
                const double ms =
                    sim::ticksToMs(done - copy.arrival);
                stats_.responseMs.add(ms);
                stats_.responseHist.add(ms);
                verify::onDiskComplete(telemetryId_, copy.id, done,
                                       controllerTicks_);
                if (onComplete_)
                    onComplete_(copy, done, info);
            });
            return;
        }
    } else {
        if (cache_.write(req.lba, req.sectors)) {
            // Write-back absorbed the write; destage happens later.
            telemetry::bump(ctrCacheHits_);
            const sim::Tick done = sim_.now() + busTicks(req.sectors);
            if (trackHitBounds_) {
                hitHeap_.push_back(done);
                std::push_heap(hitHeap_.begin(), hitHeap_.end(),
                               std::greater<sim::Tick>());
            }
            telemetry::emitSpan(req.id, telemetry::SpanKind::CacheHit,
                                sim_.now(), done, telemetryId_);
            workload::IoRequest copy = req;
            sim_.schedule(done, [this, copy, done] {
                ++stats_.completions;
                ServiceInfo info;
                info.cacheHit = true;
                const double ms =
                    sim::ticksToMs(done - copy.arrival);
                stats_.responseMs.add(ms);
                stats_.responseHist.add(ms);
                verify::onDiskComplete(telemetryId_, copy.id, done,
                                       controllerTicks_);
                if (onComplete_)
                    onComplete_(copy, done, info);
            });
            maybeDestage();
            return;
        }
    }

    const std::uint32_t slot = allocPending(req, /*internal=*/false);
    listPushBack(req.background ? bgList_ : fgList_, slot);
    beginSpinUpIfNeeded();
    tryDispatch();
}

void
DiskDrive::armIdleTimer()
{
    if (spec_.spinDownAfterMs <= 0.0 || modes_.spunDown() ||
        spinningUp_ || spinningDown_ || rpmShifting() || !idle())
        return;
    sim_.cancel(idleTimer_);
    idleTimer_ = sim_.scheduleAfter(
        sim::msToTicks(spec_.spinDownAfterMs),
        [this] { onIdleTimeout(); });
}

void
DiskDrive::onIdleTimeout()
{
    idleTimer_ = sim::kInvalidEventId;
    if (!idle() || modes_.spunDown() || spinningUp_ ||
        spinningDown_ || rpmShifting())
        return;
    ++stats_.spinDowns;
    if (spec_.spinDownMs <= 0.0) {
        // Historical instantaneous stop.
        modes_.spinDown(sim_.now());
        return;
    }
    // Model the deceleration: the drive serves nothing while the
    // transition is in flight, and standby billing starts only when
    // the platters actually stop.
    spinningDown_ = true;
    sim_.scheduleAfter(sim::msToTicks(spec_.spinDownMs),
                       [this] { onSpinDownComplete(); });
}

void
DiskDrive::onSpinDownComplete()
{
    spinningDown_ = false;
    modes_.spinDown(sim_.now());
    // A governor retarget that arrived mid-transition applies now at
    // no cost (the spindle is stopped).
    maybeStartRpmShift();
    if (!idle()) {
        // A request arrived while the transition was in flight: it
        // waited out the remaining deceleration and now pays a full
        // spin-up on top — never priced at the old speed, never
        // served half-stopped.
        beginSpinUpIfNeeded();
    }
}

void
DiskDrive::beginSpinUpIfNeeded()
{
    sim_.cancel(idleTimer_);
    idleTimer_ = sim::kInvalidEventId;
    if (!modes_.spunDown() || spinningUp_)
        return;
    spinningUp_ = true;
    ++stats_.spinUps;
    telemetry::bump(ctrSpinUps_);
    telemetry::emitSpan(0, telemetry::SpanKind::SpinUp, sim_.now(),
                        sim_.now() + sim::msToTicks(spec_.spinUpMs),
                        telemetryId_);
    sim_.scheduleAfter(sim::msToTicks(spec_.spinUpMs), [this] {
        modes_.spinUp(sim_.now());
        spinningUp_ = false;
        maybeStartRpmShift();
        tryDispatch();
    });
}

std::uint32_t
DiskDrive::totalSectors(const Active &active) const
{
    std::uint32_t total = active.req.sectors;
    for (const auto &rider : active.riders)
        total += rider.sectors;
    return total;
}

void
DiskDrive::tryDispatch()
{
    // rpmShifting() also covers the drain phase: a requested speed
    // change holds new dispatches so in-flight work never straddles
    // an RPM segment boundary (its predicted rotational waits and
    // transfer sweeps would be priced at a dead speed).
    if (modes_.spunDown() || spinningUp_ || spinningDown_ ||
        rpmShifting())
        return;
    while ((fgList_.size != 0 || bgList_.size != 0) &&
           activeSeeks_ < spec_.maxConcurrentSeeks) {
        // Collect idle arms (reused scratch; no allocation).
        idleArms_.clear();
        for (std::uint32_t k = 0;
             k < static_cast<std::uint32_t>(arms_.size()); ++k) {
            if (!arms_[k].busy && !arms_[k].failed &&
                !arms_[k].parked)
                idleArms_.push_back(
                    {k, arms_[k].cylinder, arms_[k].azimuth});
        }
        if (idleArms_.empty())
            return;

        // Foreground requests have strict priority: background work
        // (and destages) is scheduled only when no foreground request
        // is pending — the freeblock-scheduling role the paper's
        // Section 5 assigns to spare arms.
        PendingList &source = fgList_.size == 0 ? bgList_ : fgList_;
        sched::Choice choice;
        if (schedIndexed_) {
            // Pruned path: hand the scheduler the incrementally
            // maintained cylinder index over the window — no window
            // materialization, and only candidates the admissible
            // seek bound cannot exclude are priced.
            windowIndex_.bind(this, &source);
            choice = scheduler_->selectIndexed(idleArms_, oracle_,
                                               sim_.now(),
                                               windowIndex_);
        } else {
            // Exhaustive path: materialize the scheduling window
            // (oldest first) by walking the intrusive FIFO.
            window_.clear();
            for (std::uint32_t s = source.head; s != kNilSlot;
                 s = pendingPool_[s].next) {
                const Pending &p = pendingPool_[s];
                if (!p.inWindow)
                    break;
                window_.push_back({s, p.req.lba, p.cylinder,
                                   p.req.arrival, p.req.isRead});
            }
            choice = scheduler_->select(window_, idleArms_, oracle_,
                                        sim_.now());
        }
        sim::simAssert(choice.slot < pendingPool_.size() &&
                           pendingPool_[choice.slot].inWindow,
                       "disk: scheduler chose bad slot");
        sim::simAssert(choice.arm < arms_.size() &&
                           !arms_[choice.arm].busy,
                       "disk: scheduler chose busy arm");

        const std::uint32_t chosen = choice.slot;
        Active active;
        {
            const Pending &p = pendingPool_[chosen];
            active.req = p.req;
            active.chs = p.chs;
            active.internal = p.internal;
            // Most policies priced the chosen pair through the
            // oracle this very tick; reuse those exact values.
            const CostEntry &e =
                costCache_[chosen * arms_.size() + choice.arm];
            if (e.gen == p.gen && e.seekValid &&
                e.armCyl == arms_[choice.arm].cylinder) {
                active.predSeek = e.seek;
                if (e.rotValid && e.evalAt == sim_.now()) {
                    active.predRot = e.rot;
                    active.predRotAt = sim_.now() + e.seek;
                }
            }
        }
        active.arm = choice.arm;
        listUnlink(source, chosen);
        releasePending(chosen);

        if (spec_.coalesce) {
            // Fold exactly-contiguous same-kind queued requests into
            // this media access (they complete with it).
            geom::Lba next_lba = active.req.lba + active.req.sectors;
            bool merged = true;
            while (merged &&
                   active.riders.size() + 1 < spec_.coalesceLimit) {
                merged = false;
                for (std::uint32_t s = source.head; s != kNilSlot;
                     s = pendingPool_[s].next) {
                    const Pending &p = pendingPool_[s];
                    if (p.req.lba == next_lba &&
                        p.req.isRead == active.req.isRead &&
                        !p.internal) {
                        next_lba += p.req.sectors;
                        active.riders.push_back(p.req);
                        listUnlink(source, s);
                        releasePending(s);
                        merged = true;
                        break;
                    }
                }
            }
        }
        startService(std::move(active));
    }
}

void
DiskDrive::startService(Active active)
{
    const sim::Tick now = sim_.now();
    active.dispatchTime = now;
    Arm &arm = arms_[active.arm];
    arm.busy = true;

    active.seekTicks = active.predSeek != sim::kTickNever
        ? active.predSeek
        : scaledSeek(arm.cylinder, active.chs.cylinder,
                     !active.req.isRead);

    modes_.requestStart(now);
    ++stats_.mediaAccesses;
    ++stats_.armAccesses[active.arm];
    telemetry::bump(ctrMediaAccesses_);
    telemetry::emitSpan(active.req.id, telemetry::SpanKind::HostQueue,
                        active.req.arrival, now, telemetryId_,
                        static_cast<std::uint16_t>(active.arm));
    telemetry::emitInstant(active.req.id,
                           telemetry::SpanKind::ArmSelect, now,
                           telemetryId_,
                           static_cast<std::uint16_t>(active.arm));
    if (active.seekTicks > 0)
        ++stats_.nonzeroSeeks;

    const bool needs_motion = active.seekTicks > 0;
    const sim::Tick seek_ticks = active.seekTicks;
    active.phase = Phase::Seeking;
    active.doneFloor = now + seek_ticks + minTransferFloorTicks();
    const std::uint64_t id = installActive(std::move(active));

    if (needs_motion) {
        ++activeSeeks_;
        modes_.seekStart(now);
        sim_.schedule(now + seek_ticks,
                      [this, id] { onSeekDone(id); });
    } else {
        startRotation(id);
    }
    verifyOccupancy();
}

void
DiskDrive::verifyOccupancy() const
{
    if (verify::activeChecker() == nullptr)
        return;
    std::uint32_t busy_arms = 0;
    for (const auto &arm : arms_)
        if (arm.busy)
            ++busy_arms;
    verify::onDiskOccupancy(
        telemetryId_, activeCount_, busy_arms,
        static_cast<std::uint32_t>(arms_.size()), activeSeeks_,
        spec_.maxConcurrentSeeks, activeTransfers_,
        spec_.maxConcurrentTransfers);
}

void
DiskDrive::onSeekDone(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    Active &active = activeAt(id);
    sim::simAssert(activeSeeks_ > 0, "disk: seek budget underflow");
    --activeSeeks_;
    modes_.seekEnd(now);
    telemetry::emitSpan(active.req.id, telemetry::SpanKind::Seek,
                        now - active.seekTicks, now, telemetryId_,
                        static_cast<std::uint16_t>(active.arm));
    startRotation(id);
    // Freed motion budget may admit the next pending request.
    tryDispatch();
}

void
DiskDrive::startRotation(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    Active &active = activeAt(id);
    Arm &arm = arms_[active.arm];
    arm.cylinder = active.chs.cylinder;

    active.phase = Phase::Rotating;

    if (spec_.zeroLatencyAccess && active.riders.empty()) {
        // Single-track run already under the head? Start now and
        // wrap: the whole access takes one revolution.
        const std::uint32_t spt =
            geometry_.sectorsPerTrack(active.chs.cylinder);
        const std::uint32_t total = totalSectors(active);
        if (active.chs.sector + total <= spt) {
            const double extent = static_cast<double>(total) /
                static_cast<double>(spt);
            const sim::Tick to_start = scaledRotWait(
                now, active.chs, arms_[active.arm].azimuth);
            const sim::Tick period = spindle_.periodTicks();
            const sim::Tick run_ticks = spindle_.sweepTicks(extent);
            if (to_start + run_ticks > period) {
                // The head is inside the run right now.
                ++stats_.zeroLatencyHits;
                telemetry::bump(ctrZeroLatHits_);
                active.xferOverride = period;
                active.doneFloor = now + minTransferFloorTicks();
                onRotationDone(id);
                return;
            }
        }
    }

    const sim::Tick wait = active.predRotAt == now
        ? active.predRot
        : armRotWait(now, active.chs, active.arm);
    active.predRotAt = sim::kTickNever;
    active.rotTicks += wait;
    active.doneFloor = now + wait + minTransferFloorTicks();
    if (wait > 0) {
        telemetry::emitSpan(active.req.id,
                            telemetry::SpanKind::RotWait, now,
                            now + wait, telemetryId_,
                            static_cast<std::uint16_t>(active.arm));
        sim_.schedule(now + wait, [this, id] { onRotationDone(id); });
    } else {
        onRotationDone(id);
    }
}

void
DiskDrive::onRotationDone(std::uint64_t id)
{
    Active &active = activeAt(id);
    active.phase = Phase::ChannelWait;
    tryStartTransfer(id);
}

void
DiskDrive::tryStartTransfer(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    Active &active = activeAt(id);
    if (activeTransfers_ >= spec_.maxConcurrentTransfers) {
        channelWaiters_.push(id);
        active.channelWaitFrom = now;
        telemetry::bump(ctrChannelBlocks_);
        return;
    }
    ++activeTransfers_;
    modes_.transferStart(now);
    active.phase = Phase::Transferring;
    // The DASH S dimension streams from several surfaces at once,
    // dividing the media-transfer portion of the service time.
    const std::uint32_t s_par =
        std::max<std::uint32_t>(1, spec_.dash.surfaces);
    if (active.xferOverride > 0)
        active.xferTicks =
            active.xferOverride / s_par + controllerTicks_;
    else
        active.xferTicks =
            transferTicks(active.chs, totalSectors(active)) / s_par +
            controllerTicks_;
    active.doneFloor = now + active.xferTicks; // exact from here
    telemetry::emitSpan(active.req.id, telemetry::SpanKind::Transfer,
                        now, now + active.xferTicks, telemetryId_,
                        static_cast<std::uint16_t>(active.arm));
    sim_.schedule(now + active.xferTicks,
                  [this, id] { onTransferDone(id); });
}

void
DiskDrive::wakeNextChannelWaiter(bool defer_zero_wait)
{
    if (channelWaiters_.empty() ||
        activeTransfers_ >= spec_.maxConcurrentTransfers)
        return;
    const sim::Tick now = sim_.now();
    const std::uint64_t wid = channelWaiters_.pop();
    Active &waiter = activeAt(wid);
    if (waiter.channelWaitFrom != sim::kTickNever) {
        telemetry::emitSpan(waiter.req.id,
                            telemetry::SpanKind::ChannelWait,
                            waiter.channelWaitFrom, now, telemetryId_,
                            static_cast<std::uint16_t>(waiter.arm));
        waiter.channelWaitFrom = sim::kTickNever;
    }
    // Its sector has rotated past; re-wait for the platter to come
    // around again.
    const sim::Tick extra = armRotWait(now, waiter.chs, waiter.arm);
    waiter.rotTicks += extra;
    waiter.phase = Phase::Rotating;
    waiter.doneFloor = now + extra + minTransferFloorTicks();
    if (extra > 0) {
        telemetry::emitSpan(waiter.req.id,
                            telemetry::SpanKind::RotWait, now,
                            now + extra, telemetryId_,
                            static_cast<std::uint16_t>(waiter.arm));
        sim_.schedule(now + extra, [this, wid] { onRotationDone(wid); });
    } else if (defer_zero_wait) {
        // Media-retry call site: keep the historical ordering of a
        // zero-tick rotation event rather than re-entering the
        // transfer path synchronously.
        sim_.schedule(now, [this, wid] { onRotationDone(wid); });
    } else {
        onRotationDone(wid);
    }
}

void
DiskDrive::onTransferDone(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    sim::simAssert(activeTransfers_ > 0,
                   "disk: channel budget underflow");
    --activeTransfers_;
    modes_.transferEnd(now);

    // Fault injection: a failed media transfer re-reads after one
    // full revolution (the sector must come around again), holding
    // the arm but releasing the channel while it waits.
    {
        Active &active = activeAt(id);
        if (spec_.mediaRetryRate > 0.0 &&
            active.retries < spec_.maxRetries &&
            faultRng_.chance(spec_.mediaRetryRate)) {
            ++active.retries;
            ++stats_.mediaRetries;
            const sim::Tick rev = spindle_.periodTicks();
            active.rotTicks += rev;
            active.phase = Phase::Rotating;
            active.doneFloor = now + rev + minTransferFloorTicks();
            telemetry::emitSpan(
                active.req.id, telemetry::SpanKind::RotWait, now,
                now + rev, telemetryId_,
                static_cast<std::uint16_t>(active.arm));
            sim_.schedule(now + rev,
                          [this, id] { onRotationDone(id); });
            // The freed channel may admit a waiter immediately.
            wakeNextChannelWaiter(/*defer_zero_wait=*/true);
            return;
        }
    }

    completeActive(id);

    // Wake the oldest channel waiter.
    wakeNextChannelWaiter(/*defer_zero_wait=*/false);
}

void
DiskDrive::completeActive(std::uint64_t id)
{
    const sim::Tick now = sim_.now();
    Active active = std::move(activeAt(id));
    releaseActive(id);
    verify::onDiskServiceBound(telemetryId_, active.doneFloor, now);
    modes_.requestEnd(now);
    arms_[active.arm].busy = false;
    verifyOccupancy();

    if (active.req.isRead)
        cache_.installRead(active.req.lba, totalSectors(active));

    if (active.internal) {
        ++stats_.destages;
    } else {
        ServiceInfo info;
        info.seekTicks = active.seekTicks;
        info.rotTicks = active.rotTicks;
        info.xferTicks = active.xferTicks;
        info.queueTicks = active.dispatchTime - active.req.arrival;
        info.arm = active.arm;
        info.cacheHit = false;
        if (spec_.mediaRetryRate > 0.0 &&
            active.retries >= spec_.maxRetries) {
            info.failed = true;
            ++stats_.hardErrors;
        }

        auto record = [&](const workload::IoRequest &req) {
            ++stats_.completions;
            if (req.background)
                ++stats_.backgroundCompletions;
            const double resp_ms = sim::ticksToMs(now - req.arrival);
            stats_.responseMs.add(resp_ms);
            stats_.responseHist.add(resp_ms);
            stats_.seekMs.add(sim::ticksToMs(active.seekTicks));
            const double rot_ms = sim::ticksToMs(active.rotTicks);
            stats_.rotMs.add(rot_ms);
            stats_.rotHist.add(rot_ms);
            verify::onDiskComplete(telemetryId_, req.id, now,
                                   controllerTicks_);
            if (onComplete_)
                onComplete_(req, now, info);
        };
        record(active.req);
        stats_.coalescedRequests += active.riders.size();
        for (const auto &rider : active.riders)
            record(rider);
    }

    // A pending speed change starts its ramp the moment the drive
    // drains (dispatches are already gated).
    maybeStartRpmShift();
    tryDispatch();
    maybeDestage();
    armIdleTimer();
}

void
DiskDrive::maybeDestage()
{
    if (!spec_.cache.writeBack)
        return;
    if (fgList_.size != 0 || bgList_.size != 0 || activeCount_ != 0)
        return;
    auto dirty = cache_.popDirty();
    if (!dirty)
        return;
    workload::IoRequest req;
    req.id = 0;
    req.arrival = sim_.now();
    req.lba = dirty->lba;
    req.sectors = dirty->sectors;
    req.isRead = false;
    const std::uint32_t slot = allocPending(req, /*internal=*/true);
    listPushBack(bgList_, slot);
    beginSpinUpIfNeeded();
    tryDispatch();
}

stats::ModeTimes
DiskDrive::finishModeTimes()
{
    return modes_.finish(sim_.now());
}

std::vector<stats::RpmSegment>
DiskDrive::finishModeSegments()
{
    const stats::ModeTimes total = modes_.finish(sim_.now());
    std::vector<stats::RpmSegment> segs =
        modes_.finishSegments(sim_.now());
    if (verify::activeChecker() != nullptr) {
        stats::ModeTimes seg_sum;
        for (const auto &seg : segs)
            seg_sum.merge(seg.times);
        verify::onModeAccounting(
            telemetryId_, total, seg_sum,
            static_cast<std::uint32_t>(arms_.size()));
    }
    return segs;
}

stats::ModeTimes
DiskDrive::modeTimesSnapshot() const
{
    return modes_.snapshot(sim_.now());
}

sim::Tick
DiskDrive::WindowIndex::seekLowerBound(std::uint32_t dist) const
{
    return drive_->seekLbTicks(dist);
}

sim::Tick
DiskDrive::WindowIndex::maxQueueWait(sim::Tick now) const
{
    // The FIFO head is the oldest window member, but coalescing can
    // unlink mid-list, so walk the (bounded) window prefix.
    sim::Tick max_wait = 0;
    for (std::uint32_t s = list_->head;
         s != kNilSlot && drive_->pendingPool_[s].inWindow;
         s = drive_->pendingPool_[s].next) {
        const sim::Tick arrival = drive_->pendingPool_[s].req.arrival;
        const sim::Tick wait = now - std::min(now, arrival);
        if (wait > max_wait)
            max_wait = wait;
    }
    return max_wait;
}

void
DiskDrive::WindowIndex::beginScan(std::uint32_t cylinder)
{
    scan_ = list_->index.beginScan(cylinder);
}

bool
DiskDrive::WindowIndex::nextBand(
    std::uint32_t &min_dist,
    std::vector<sched::IndexedCandidate> &members)
{
    std::uint32_t bucket = CylinderBuckets::kNil;
    if (!list_->index.nextBucket(scan_, bucket, min_dist))
        return false;
    members.clear();
    for (std::uint32_t s = list_->index.head(bucket);
         s != CylinderBuckets::kNil; s = list_->index.next(s)) {
        const Pending &p = drive_->pendingPool_[s];
        members.push_back({{s, p.req.lba, p.cylinder, p.req.arrival,
                            p.req.isRead},
                           p.seq});
        ++visited_;
    }
    return true;
}

bool
DiskDrive::WindowIndex::firstAtOrAbove(std::uint32_t cylinder,
                                       sched::IndexedCandidate &out)
{
    const CylinderBuckets &index = list_->index;
    std::uint32_t bucket =
        index.firstOccupiedAtOrAbove(index.bucketOf(cylinder));
    while (bucket != CylinderBuckets::kNil) {
        // Buckets partition the cylinder range in ascending order, so
        // the first bucket with a qualifying member holds the answer;
        // only the starting bucket can mix members below @p cylinder.
        bool have = false;
        for (std::uint32_t s = index.head(bucket);
             s != CylinderBuckets::kNil; s = index.next(s)) {
            const Pending &p = drive_->pendingPool_[s];
            ++visited_;
            if (p.cylinder < cylinder)
                continue;
            if (!have || p.cylinder < out.view.cylinder ||
                (p.cylinder == out.view.cylinder &&
                 p.seq < out.order)) {
                out = {{s, p.req.lba, p.cylinder, p.req.arrival,
                        p.req.isRead},
                       p.seq};
                have = true;
            }
        }
        if (have)
            return true;
        bucket = index.firstOccupiedAtOrAbove(bucket + 1);
    }
    return false;
}

bool
DiskDrive::WindowIndex::lowestCylinder(sched::IndexedCandidate &out)
{
    const CylinderBuckets &index = list_->index;
    const std::uint32_t bucket = index.firstOccupied();
    if (bucket == CylinderBuckets::kNil)
        return false;
    bool have = false;
    for (std::uint32_t s = index.head(bucket);
         s != CylinderBuckets::kNil; s = index.next(s)) {
        const Pending &p = drive_->pendingPool_[s];
        ++visited_;
        if (!have || p.cylinder < out.view.cylinder ||
            (p.cylinder == out.view.cylinder && p.seq < out.order)) {
            out = {{s, p.req.lba, p.cylinder, p.req.arrival,
                    p.req.isRead},
                   p.seq};
            have = true;
        }
    }
    return have;
}

void
DiskDrive::WindowIndex::materializeWindow(
    std::vector<sched::PendingView> &out) const
{
    out.clear();
    for (std::uint32_t s = list_->head; s != kNilSlot;
         s = drive_->pendingPool_[s].next) {
        const Pending &p = drive_->pendingPool_[s];
        if (!p.inWindow)
            break;
        out.push_back(
            {s, p.req.lba, p.cylinder, p.req.arrival, p.req.isRead});
    }
}

} // namespace disk
} // namespace idp
