/**
 * @file
 * Event-driven disk drive model with intra-disk parallelism.
 *
 * Service pipeline per request (cache misses):
 *
 *   dispatch -> [seek] -> [rotational wait] -> [channel wait] ->
 *   [transfer] -> complete
 *
 * Each in-flight request occupies one arm assembly. Two drive-wide
 * resources gate concurrency, matching the paper's HC-SD-SA(n) design
 * (Section 7.2): a *motion budget* (how many arms may seek at once;
 * 1 in the base design) and a *channel budget* (how many heads may
 * transfer at once; 1 in the base design). The technical-report
 * extensions raise either budget. A conventional drive is simply the
 * n = 1 case.
 *
 * Rotational waits need no resource: arms hold position while the
 * platter spins. A request that loses the channel when its sector
 * arrives re-waits a full pass, exactly as real hardware would.
 *
 * Scheduling: when an arm and motion budget are free, the configured
 * scheduler examines a bounded window of the pending queue and all
 * idle arms. The default follows the paper's setup: rotation-blind
 * C-LOOK request selection (DiskSim-era driver-level LBN scheduling)
 * with the arm chosen by shortest positioning time, using this
 * drive's seek curve, spindle phase, and each arm's chassis azimuth
 * as the oracle. Full joint SPTF is available as an ablation.
 *
 * The other DASH dimensions are modeled too: headsPerArm > 1 (H)
 * staggers several heads per arm so the rotational wait takes the
 * best head; dash.surfaces > 1 (S) streams from multiple surfaces,
 * dividing media-transfer time.
 */

#ifndef IDP_DISK_DISK_DRIVE_HH
#define IDP_DISK_DISK_DRIVE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/disk_cache.hh"
#include "disk/cyl_index.hh"
#include "disk/drive_config.hh"
#include "geom/geometry.hh"
#include "mech/seek_model.hh"
#include "mech/spindle.hh"
#include "sched/scheduler.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "stats/mode_tracker.hh"
#include "stats/sampler.hh"
#include "telemetry/telemetry.hh"
#include "workload/request.hh"

namespace idp {
namespace disk {

/** Per-request service detail reported with each completion. */
struct ServiceInfo
{
    sim::Tick seekTicks = 0;
    sim::Tick rotTicks = 0;  ///< total rotational wait (incl. re-waits)
    sim::Tick xferTicks = 0;
    sim::Tick queueTicks = 0; ///< arrival -> dispatch
    std::uint32_t arm = 0;
    bool cacheHit = false;
    /** Media access exhausted its retries (fault injection). */
    bool failed = false;
};

/** Completion callback: (request, completion time, detail). */
using CompletionFn = std::function<void(
    const workload::IoRequest &, sim::Tick, const ServiceInfo &)>;

/** Aggregated per-drive statistics. */
struct DriveStats
{
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    std::uint64_t reads = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t mediaAccesses = 0;
    std::uint64_t nonzeroSeeks = 0;
    std::uint64_t destages = 0;
    std::uint64_t backgroundCompletions = 0;
    std::uint64_t zeroLatencyHits = 0; ///< in-run read-on-arrival
    std::uint64_t coalescedRequests = 0; ///< riders folded in
    std::uint64_t mediaRetries = 0;      ///< injected re-reads
    std::uint64_t hardErrors = 0;        ///< retry budget exhausted
    std::uint64_t spinDowns = 0;         ///< power-mgmt spindle stops
    std::uint64_t spinUps = 0;
    std::uint64_t rpmShifts = 0;         ///< runtime RPM transitions
    std::uint64_t armParks = 0;          ///< actuator park events
    std::uint64_t armUnparks = 0;

    stats::SampleSet responseMs{1u << 20};
    stats::SampleSet seekMs{1u << 18};
    stats::SampleSet rotMs{1u << 18};
    stats::Histogram responseHist = stats::makeResponseHistogram();
    stats::Histogram rotHist = stats::makeRotLatencyHistogram();

    /** Per-arm media-access counts (scheduling balance). */
    std::vector<std::uint64_t> armAccesses;

    double
    nonzeroSeekFraction() const
    {
        return mediaAccesses
            ? static_cast<double>(nonzeroSeeks) /
                static_cast<double>(mediaAccesses)
            : 0.0;
    }
};

/**
 * One disk drive attached to a simulator.
 *
 * The drive does not own the completion consumer; storage arrays (or
 * tests) provide the callback. All methods must be called from the
 * simulator's event context (single-threaded).
 */
class DiskDrive
{
  public:
    DiskDrive(sim::Simulator &simul, const DriveSpec &spec,
              CompletionFn on_complete);

    DiskDrive(const DiskDrive &) = delete;
    DiskDrive &operator=(const DiskDrive &) = delete;

    /** Submit a request at the current simulated time. */
    void submit(const workload::IoRequest &req);

    /** Pending (not yet dispatched) request count. */
    std::size_t
    queueDepth() const
    {
        return fgList_.size + bgList_.size;
    }

    /** Pending host-visible (non-background) request count. */
    std::size_t foregroundQueueDepth() const { return fgList_.size; }

    /**
     * Price a hypothetical read of (@p lba, @p sectors) dispatched
     * right now: the cheapest healthy arm's seek + rotational wait
     * (the same oracle the scheduler prices dispatches with), the
     * media transfer, and a backlog term charging every queued or
     * in-flight request one average service time. Mirrored arrays use
     * this to route a read to the cheaper replica the way the
     * scheduler routes it to the cheaper arm. Read-only: consults
     * live arm positions and spindle phase but perturbs nothing.
     */
    sim::Tick readPriceTicks(geom::Lba lba,
                             std::uint32_t sectors) const;

    /** Requests currently in mechanical service. */
    std::size_t inFlight() const { return activeCount_; }

    /**
     * Admissible lower bound on the earliest tick this drive's next
     * host-visible completion can fire, evaluated for a conservative
     * window starting at @p round_start (the PDES engine's dynamic
     * horizon). Combines the scheduled cache-hit/write-absorb
     * completion ticks, each in-flight access's phase floor
     * (Transferring is exact; earlier phases add the minimum
     * remaining transfer), and a queued-work floor of
     * round_start + minServiceFloorTicks(). kTickNever when nothing
     * is queued or in flight — an idle drive cannot complete anything
     * until the coordinator feeds it. Allocation-free; lazily prunes
     * already-fired cache-hit entries (@p round_start is the global
     * minimum pending activity, so entries behind it have fired).
     */
    sim::Tick completionBoundTicks(sim::Tick round_start);

    /**
     * Minimum service time of any request delivered to this drive
     * from now on: the cheaper of a one-sector cache-hit return
     * (controller + buffer-bus latency, RPM-independent) and a
     * zero-seek zero-rotation one-sector media transfer. The media
     * half is priced at the fastest RPM the drive can reach without a
     * new (serially synchronized) governor decision —
     * max(current, desired, in-flight ramp target) — so the floor
     * stays admissible across a mid-window ramp completion.
     */
    sim::Tick minServiceFloorTicks() const;

    /**
     * Record scheduled cache-hit completion ticks for
     * completionBoundTicks (PDES dynamic horizon). Off by default so
     * serial runs pay nothing; the array enables it when its bridge
     * derives horizons from drive state.
     */
    void trackCompletionBounds(bool on) { trackHitBounds_ = on; }

    /** True when no request is queued or in service. */
    bool
    idle() const
    {
        return fgList_.size == 0 && bgList_.size == 0 &&
            activeCount_ == 0;
    }

    /** Close mode accounting at the current time and return totals. */
    stats::ModeTimes finishModeTimes();

    /**
     * Close mode accounting and return the per-RPM-segment breakdown
     * the power model prices segment-by-segment. Also feeds the
     * verify layer's mode/energy conservation check (segments must
     * tile the totals exactly).
     */
    std::vector<stats::RpmSegment> finishModeSegments();

    /** Snapshot of mode accounting without closing. */
    stats::ModeTimes modeTimesSnapshot() const;

    /**
     * Pre-reserve the per-drive sample buffers to their reservoir
     * capacity so completion-path ingestion never reallocates in
     * steady state (long-lived serving loops, rebuild benches).
     */
    void
    reserveStatsCapacity()
    {
        stats_.responseMs.reserve(~std::size_t(0));
        stats_.seekMs.reserve(~std::size_t(0));
        stats_.rotMs.reserve(~std::size_t(0));
    }

    const DriveStats &stats() const { return stats_; }
    const DriveSpec &spec() const { return spec_; }
    const geom::DiskGeometry &geometry() const { return geometry_; }
    const mech::SeekModel &seekModel() const { return seekModel_; }
    const mech::Spindle &spindle() const { return spindle_; }
    const cache::DiskCache &diskCache() const { return cache_; }

    /** Current cylinder of arm @p k (tests / examples). */
    std::uint32_t armCylinder(std::uint32_t k) const;

    /**
     * Deconfigure arm @p k (paper Section 8: SMART-driven graceful
     * degradation). The arm finishes any request it is servicing and
     * is never scheduled again. Failing the last healthy arm is a
     * caller error and panics.
     */
    void failArm(std::uint32_t k);

    /** Healthy (still configured) arm count. */
    std::uint32_t aliveArms() const;

    /**
     * Park / unpark arm assembly @p k (actuator power management).
     * A parked arm is excluded from dispatch and replica pricing but
     * stays configured — unparking restores it, unlike failArm.
     * Parking requires the arm idle (not mid-service) and at least
     * one other serviceable arm; both are caller errors otherwise.
     */
    void parkArm(std::uint32_t k);
    void unparkArm(std::uint32_t k);

    /** Currently parked arm count. */
    std::uint32_t parkedArms() const;

    /** True if arm @p k is parked. */
    bool armParked(std::uint32_t k) const;

    /** True if arm @p k is servicing a request (governor must not
     *  park a busy arm). */
    bool armBusy(std::uint32_t k) const;

    /**
     * Request a runtime spindle-speed change (the energy governor's
     * actuation point). The drive drains in-flight requests (new
     * dispatches are gated), serves nothing for spec().rpmShiftMs
     * while the spindle ramps, then resumes at the new speed with all
     * period-derived pricing re-derived and the positioning-cost
     * cache invalidated. Requests arriving during the ramp queue and
     * are priced at the new speed. While spun down the change is
     * recorded instantly (the spin-up pays the ramp). A repeated
     * request for the current speed is a no-op.
     */
    void requestRpm(std::uint32_t rpm);

    /** Current spindle speed (the last applied requestRpm). */
    std::uint32_t currentRpm() const { return spindle_.rpm(); }

    /** True while an RPM ramp is in flight or a drain is pending. */
    bool
    rpmShifting() const
    {
        return rpmShifting_ || desiredRpm_ != spindle_.rpm();
    }

    /** True while the spindle is stopped (spin-down power mgmt). */
    bool spunDown() const { return modes_.spunDown(); }

    /** True while a spin-down transition is in flight. */
    bool spinningDown() const { return spinningDown_; }

    /**
     * Physical disk index reported in telemetry spans (set by the
     * owning StorageArray; standalone drives report 0).
     */
    void setTelemetryId(std::uint32_t id) { telemetryId_ = id; }
    std::uint32_t telemetryId() const { return telemetryId_; }

    /**
     * Set the spindle's rotational phase at tick 0 (revolutions,
     * [0, 1)). The owning array skews member phases so independent
     * spindles do not start the run rotationally aligned; a
     * standalone drive keeps the default 0. Configuration-time only
     * — must precede the first request.
     */
    void setSpindlePhase(double angle) { spindle_.setPhase(angle); }

  private:
    enum class Phase
    {
        Seeking,
        Rotating,
        ChannelWait,
        Transferring,
    };

    /** Sentinel slot index for intrusive-list links. */
    static constexpr std::uint32_t kNilSlot = 0xffffffffu;

    /**
     * One queued request, stored by value in a slot-stable arena.
     * Geometry lookups (CHS, sector angle) are hoisted to enqueue
     * time so the positioning oracle never re-resolves the LBA.
     * Queue ordering is an intrusive doubly-linked list through
     * next/prev, so dispatch and coalescing unlink in O(1) with zero
     * steady-state allocations.
     */
    struct Pending
    {
        workload::IoRequest req;
        geom::Chs chs;
        double sectorAngle = 0.0;
        std::uint32_t cylinder = 0;
        bool internal = false; ///< destage traffic, not reported
        /** Bumped per slot reuse; guards stale cost-cache rows. */
        std::uint32_t gen = 0;
        std::uint32_t next = kNilSlot;
        std::uint32_t prev = kNilSlot;
        /**
         * Drive-wide monotone enqueue stamp. The FIFO is append-only
         * with order-preserving unlinks, so ascending seq *is* the
         * queue order — the schedulers' cost tie-break key, replacing
         * the window position the exhaustive scan ties on.
         */
        std::uint64_t seq = 0;
        /** Member of the first min(size, schedWindow) list prefix. */
        bool inWindow = false;
    };

    /**
     * Intrusive FIFO over arena slots (head = oldest). The scheduling
     * window — the first min(size, schedWindow) entries — is tracked
     * incrementally: windowTail/windowCount move O(1) per push and
     * unlink (an unlink inside the window promotes the first entry
     * beyond it), and the cylinder index mirrors exactly the window
     * members, so dispatch never walks or materializes the prefix.
     */
    struct PendingList
    {
        std::uint32_t head = kNilSlot;
        std::uint32_t tail = kNilSlot;
        std::size_t size = 0;
        std::uint32_t windowTail = kNilSlot;
        std::uint32_t windowCount = 0;
        /** Cylinder-bucketed window members (indexed dispatch only). */
        CylinderBuckets index;
    };

    /**
     * Cached positioning cost for one (pending slot, arm) pair.
     * The seek half stays valid while the arm's cylinder is
     * unchanged; the rotational half is phase-dependent and stays
     * valid only for the exact evaluation tick it was computed at
     * (reusing it across ticks would need floating-point identities
     * the spindle math does not guarantee bit-exactly, and figure
     * outputs are pinned byte-identical).
     */
    struct CostEntry
    {
        std::uint32_t gen = 0;
        std::uint32_t armCyl = 0;
        sim::Tick evalAt = 0;
        sim::Tick seek = 0;
        sim::Tick rot = 0;
        bool seekValid = false;
        bool rotValid = false;
    };

    struct Active
    {
        workload::IoRequest req;
        geom::Chs chs;
        std::uint32_t arm = 0;
        Phase phase = Phase::Seeking;
        sim::Tick dispatchTime = 0;
        sim::Tick seekTicks = 0;
        sim::Tick rotTicks = 0;
        sim::Tick xferTicks = 0;
        /** Zero-latency in-run hit: transfer takes one revolution. */
        sim::Tick xferOverride = 0;
        /** When channel-blocked: block start time (for the span). */
        sim::Tick channelWaitFrom = sim::kTickNever;
        std::uint32_t retries = 0; ///< media-error re-reads so far
        bool internal = false; ///< destage traffic, not reported
        /**
         * Positioning the oracle priced for this (request, arm) pair
         * at dispatch. startService/startRotation reuse the values
         * instead of recomputing when still exact: the seek whenever
         * predicted (same arm cylinder, same target), the rotational
         * wait only when startRotation runs at exactly predRotAt
         * (dispatch tick + predicted seek). kTickNever = no
         * prediction (e.g. SSTF never calls the oracle).
         */
        sim::Tick predSeek = sim::kTickNever;
        sim::Tick predRot = sim::kTickNever;
        sim::Tick predRotAt = sim::kTickNever;
        /** Bumped per arena-slot reuse; tags in-flight ids. */
        std::uint32_t gen = 0;
        /**
         * Admissible lower bound on this access's completion tick,
         * refreshed at every phase transition (exact once
         * Transferring). Riders complete with their access, so one
         * floor covers them all.
         */
        sim::Tick doneFloor = 0;
        /** Slot holds a live access (vs free-list member). */
        bool inUse = false;
        /** Contiguous requests folded into this media access. */
        std::vector<workload::IoRequest> riders;
    };

    /** Allocation-free FIFO of in-flight ids blocked on the channel
     *  (power-of-two ring; grows only past the high-water mark). */
    struct WaiterRing
    {
        std::vector<std::uint64_t> buf;
        std::size_t head = 0;
        std::size_t count = 0;

        bool empty() const { return count == 0; }

        void
        push(std::uint64_t v)
        {
            if (count == buf.size()) {
                // Grow and re-linearize (rare; capacity is retained).
                std::vector<std::uint64_t> bigger(
                    buf.empty() ? 16 : buf.size() * 2);
                for (std::size_t i = 0; i < count; ++i)
                    bigger[i] = buf[(head + i) & (buf.size() - 1)];
                buf = std::move(bigger);
                head = 0;
            }
            buf[(head + count) & (buf.size() - 1)] = v;
            ++count;
        }

        std::uint64_t
        pop()
        {
            const std::uint64_t v = buf[head];
            head = (head + 1) & (buf.size() - 1);
            --count;
            return v;
        }
    };

    struct Arm
    {
        std::uint32_t cylinder = 0;
        double azimuth = 0.0;
        bool busy = false;
        bool failed = false; ///< deconfigured by failArm()
        bool parked = false; ///< power-managed; reversible
    };

    /**
     * Adapter the indexed dispatch path hands to
     * IoScheduler::selectIndexed: the source list's cylinder buckets
     * plus this drive's seek curve as the admissible lower bound.
     * Bound per selection (bind()), so one instance serves both
     * pending lists with zero per-dispatch allocation.
     */
    class WindowIndex final : public sched::CylinderIndex
    {
      public:
        void
        bind(DiskDrive *drive, const PendingList *list)
        {
            drive_ = drive;
            list_ = list;
            visited_ = 0;
        }

        std::size_t windowSize() const override
        {
            return list_->windowCount;
        }
        sim::Tick seekLowerBound(std::uint32_t dist) const override;
        sim::Tick maxQueueWait(sim::Tick now) const override;
        void beginScan(std::uint32_t cylinder) override;
        bool nextBand(std::uint32_t &min_dist,
                      std::vector<sched::IndexedCandidate> &members)
            override;
        bool firstAtOrAbove(std::uint32_t cylinder,
                            sched::IndexedCandidate &out) override;
        bool lowestCylinder(sched::IndexedCandidate &out) override;
        void materializeWindow(
            std::vector<sched::PendingView> &out) const override;
        std::uint64_t visited() const override { return visited_; }

      private:
        DiskDrive *drive_ = nullptr;
        const PendingList *list_ = nullptr;
        CylinderBuckets::Scan scan_;
        std::uint64_t visited_ = 0;
    };

    sim::Simulator &sim_;
    DriveSpec spec_;
    geom::DiskGeometry geometry_;
    mech::SeekModel seekModel_;
    mech::Spindle spindle_;
    cache::DiskCache cache_;
    std::unique_ptr<sched::IoScheduler> scheduler_;
    CompletionFn onComplete_;

    std::vector<Arm> arms_;
    std::uint32_t activeSeeks_ = 0;
    std::uint32_t activeTransfers_ = 0;

    /** Slot-stable pending arena + free list + FIFO index lists. */
    std::vector<Pending> pendingPool_;
    std::vector<std::uint32_t> pendingFree_;
    PendingList fgList_; ///< foreground queue
    PendingList bgList_; ///< background + destage queue

    /** Slot-stable in-flight arena (ids are (gen << 32) | slot). */
    std::vector<Active> activePool_;
    std::vector<std::uint32_t> activeFree_;
    std::size_t activeCount_ = 0;

    /** Per-(pending slot, arm) positioning costs; see CostEntry. */
    std::vector<CostEntry> costCache_;

    /** Reused per-dispatch scratch (no per-dispatch allocations). */
    std::vector<sched::PendingView> window_;
    std::vector<sched::ArmView> idleArms_;
    sched::PositioningFn oracle_;
    WindowIndex windowIndex_;
    /** Monotone enqueue stamp feeding Pending::seq. */
    std::uint64_t enqueueSeq_ = 0;
    /** Dispatch through the cylinder index (policy supports it,
     *  spec_.schedPrune set, IDP_SCHED_PRUNE not disabling it). */
    bool schedIndexed_ = false;

    WaiterRing channelWaiters_; // FIFO of in-flight ids

    stats::ModeTracker modes_;
    DriveStats stats_;
    sim::Rng faultRng_{0x51D0};

    std::uint32_t telemetryId_ = 0;
    /** Registry handles (null when no registry is installed). */
    telemetry::Counter *ctrMediaAccesses_ = nullptr;
    telemetry::Counter *ctrCacheHits_ = nullptr;
    telemetry::Counter *ctrChannelBlocks_ = nullptr;
    telemetry::Counter *ctrZeroLatHits_ = nullptr;
    telemetry::Counter *ctrSpinUps_ = nullptr;

    sim::Tick headSwitchTicks_;
    sim::Tick controllerTicks_;
    /** Mean-service proxy (1/3-stroke seek + half a revolution) the
     *  replica price charges per queued/in-flight request. */
    sim::Tick estServiceTicks_ = 0;
    sim::EventId idleTimer_ = sim::kInvalidEventId;
    bool spinningUp_ = false;
    /** Spin-down transition in flight (spec_.spinDownMs > 0). */
    bool spinningDown_ = false;
    /** Speed the last requestRpm asked for (init: spec rpm). */
    std::uint32_t desiredRpm_ = 0;
    /** RPM ramp in flight, and its target. */
    bool rpmShifting_ = false;
    std::uint32_t shiftTo_ = 0;

    /**
     * Min-heap of scheduled cache-hit / write-absorb completion ticks
     * (only fed while trackHitBounds_; lazily pruned by
     * completionBoundTicks against the round start, which is the
     * global minimum pending activity — entries behind it fired).
     */
    std::vector<sim::Tick> hitHeap_;
    bool trackHitBounds_ = false;
    /** Densest zone's sectors-per-track (fastest one-sector sweep). */
    std::uint32_t maxSpt_ = 1;

    std::uint32_t totalSectors(const Active &active) const;
    void tryDispatch();
    void startService(Active active);
    void onSeekDone(std::uint64_t id);
    void startRotation(std::uint64_t id);
    void onRotationDone(std::uint64_t id);
    void tryStartTransfer(std::uint64_t id);
    void onTransferDone(std::uint64_t id);
    void completeActive(std::uint64_t id);
    void maybeDestage();

    /** Arena plumbing for the pending queues. */
    std::uint32_t allocPending(const workload::IoRequest &req,
                               bool internal);
    void releasePending(std::uint32_t slot);
    void listPushBack(PendingList &list, std::uint32_t slot);
    void listUnlink(PendingList &list, std::uint32_t slot);

    /** Arena plumbing for in-flight requests. */
    std::uint64_t installActive(Active active);
    Active &activeAt(std::uint64_t id);
    void releaseActive(std::uint64_t id);

    /**
     * Admit the oldest channel waiter if the channel has room; its
     * sector has rotated past, so it re-waits for the platter.
     * @p defer_zero_wait preserves the media-retry call site's
     * historical behaviour of scheduling a zero-tick rotation event
     * instead of re-entering the transfer path synchronously (the
     * two orderings interleave differently with same-tick events).
     */
    void wakeNextChannelWaiter(bool defer_zero_wait);

    /** Memoized positioning oracle; see CostEntry for validity. */
    sim::Tick cachedPositioning(const sched::PendingView &req,
                                const sched::ArmView &arm);
    void armIdleTimer();
    void onIdleTimeout();
    void onSpinDownComplete();
    void beginSpinUpIfNeeded();
    /** Start the pending RPM ramp if the drive is quiescent (or apply
     *  instantly while spun down). Safe to call opportunistically. */
    void maybeStartRpmShift();
    void completeRpmShift();
    /** Switch the spindle at @p now and re-derive every period-derived
     *  constant (service pricing, positioning-cost cache). */
    void applyRpm(sim::Tick now, std::uint32_t rpm);
    /** Feed the arm/seek/channel occupancy to the invariant checker
     *  (no-op when none is installed). */
    void verifyOccupancy() const;

    sim::Tick scaledSeek(std::uint32_t from, std::uint32_t to,
                         bool is_write) const;
    /**
     * Admissible positioning lower bound at cylinder distance
     * @p dist: the scaled read seek with zero rotational wait —
     * exactly the seek half scaledSeek() computes for that distance,
     * so it never exceeds what cachedPositioning() can return
     * (writes only add settle time; rotation only adds wait).
     */
    sim::Tick seekLbTicks(std::uint32_t dist) const;
    sim::Tick scaledRotWait(sim::Tick at, const geom::Chs &chs,
                            double azimuth) const;
    /** scaledRotWait with the sector angle already resolved. */
    sim::Tick scaledRotWaitAngle(sim::Tick at, double angle,
                                 double azimuth) const;
    /**
     * Rotational wait for arm @p arm_index, taking the best of its
     * headsPerArm heads (the DASH H dimension: heads mounted
     * equidistant from the actuation axis at staggered azimuths).
     */
    sim::Tick armRotWait(sim::Tick at, const geom::Chs &chs,
                         std::uint32_t arm_index) const;
    /** armRotWait with the sector angle already resolved. */
    sim::Tick armRotWaitAngle(sim::Tick at, double angle,
                              std::uint32_t arm_index) const;
    sim::Tick transferTicks(const geom::Chs &start,
                            std::uint32_t sectors) const;
    sim::Tick busTicks(std::uint32_t sectors) const;
    /**
     * Minimum one-sector media path: controller overhead plus the
     * densest zone's one-sector sweep at the fastest reachable RPM
     * (see minServiceFloorTicks), divided by the parallelism the spec
     * grants a single access. Ignores seek, settle, and rotational
     * wait — all nonnegative — so it lower-bounds any media transfer.
     */
    sim::Tick minTransferFloorTicks() const;
};

} // namespace disk
} // namespace idp

#endif // IDP_DISK_DISK_DRIVE_HH
