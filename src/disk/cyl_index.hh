/**
 * @file
 * Bucketed cylinder index over pending-queue slots.
 *
 * The dispatch schedulers want the pending window ordered by cylinder
 * so candidates can be enumerated outward from an arm's position in
 * nondecreasing seek-distance order, letting a branch-and-bound scan
 * stop as soon as the admissible seek lower bound at a band's
 * distance exceeds the best exactly-priced candidate. A comparison
 * tree would give that ordering at O(log n) per update; pending
 * windows are small (tens to a few hundred slots), so a flat bucket
 * array wins: the cylinder space is divided into kBuckets equal
 * ranges, each holding an intrusive doubly-linked list of slots, with
 * a 256-bit occupancy bitmap for skipping empty buckets in O(1)
 * word scans. Insert and remove are O(1); an outward scan visits
 * occupied buckets in nondecreasing minimum-distance order by merging
 * a downward and an upward bitmap cursor.
 *
 * The index stores slot ids only — callers own the slot payloads and
 * any tie-break ordering (the drive keys ties on FIFO sequence
 * numbers). Distances are bucket *lower bounds*: every slot in a
 * bucket is at least minDistance() cylinders from the scan origin,
 * which is exactly the admissibility the pruned schedulers need.
 */

#ifndef IDP_DISK_CYL_INDEX_HH
#define IDP_DISK_CYL_INDEX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace idp {
namespace disk {

class CylinderBuckets
{
  public:
    /** Sentinel for "no slot" / "no bucket". */
    static constexpr std::uint32_t kNil = 0xffffffffu;
    /** Bucket count (fixed; width adapts to the cylinder range). */
    static constexpr std::uint32_t kBuckets = 256;

    /** Cover cylinders [0, @p cylinders) and clear all members. */
    void configure(std::uint32_t cylinders);

    /** Grow per-slot link storage so slot ids < @p n are addressable. */
    void ensureSlots(std::size_t n);

    /** Add @p slot at @p cylinder. The slot must not be present. */
    void insert(std::uint32_t slot, std::uint32_t cylinder);

    /** Remove a present @p slot. */
    void remove(std::uint32_t slot);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool contains(std::uint32_t slot) const
    {
        return slot < cyl_.size() && cyl_[slot] != kNil;
    }
    std::uint32_t cylinderOf(std::uint32_t slot) const
    {
        return cyl_[slot];
    }

    /** Bucket holding @p cylinder. */
    std::uint32_t
    bucketOf(std::uint32_t cylinder) const
    {
        const std::uint32_t b = cylinder / width_;
        return b < kBuckets ? b : kBuckets - 1;
    }

    /** First slot of @p bucket (kNil when empty); then next(). */
    std::uint32_t head(std::uint32_t bucket) const
    {
        return heads_[bucket];
    }
    std::uint32_t next(std::uint32_t slot) const { return next_[slot]; }

    /**
     * Minimum cylinder distance from @p origin_cyl to any cylinder in
     * @p bucket's range (0 when the origin lies inside the range).
     * A lower bound for every member: members can only sit deeper
     * inside the range than its nearest edge.
     */
    std::uint32_t minDistance(std::uint32_t bucket,
                              std::uint32_t origin_cyl) const;

    /** Outward-scan cursor; value-type so scans can nest. */
    struct Scan
    {
        std::uint32_t origin = 0; ///< origin cylinder
        std::int32_t down = -1;   ///< highest unvisited bucket at/below
        std::uint32_t up = 0;     ///< lowest unvisited bucket above
    };

    /** Start an outward scan from @p cylinder. */
    Scan beginScan(std::uint32_t cylinder) const;

    /**
     * Advance to the next occupied bucket in nondecreasing
     * minDistance order. @return false when all occupied buckets have
     * been visited.
     */
    bool nextBucket(Scan &scan, std::uint32_t &bucket,
                    std::uint32_t &min_dist) const;

    /** Lowest occupied bucket index >= @p bucket (kNil when none). */
    std::uint32_t firstOccupiedAtOrAbove(std::uint32_t bucket) const;

    /** Lowest occupied bucket (kNil when the index is empty). */
    std::uint32_t
    firstOccupied() const
    {
        return firstOccupiedAtOrAbove(0);
    }

  private:
    std::uint32_t width_ = 1; ///< cylinders per bucket
    std::size_t size_ = 0;
    std::uint64_t occupied_[kBuckets / 64] = {};
    std::uint32_t heads_[kBuckets] = {};
    /** Per-slot links; cyl_[slot] == kNil marks "not present". */
    std::vector<std::uint32_t> next_;
    std::vector<std::uint32_t> prev_;
    std::vector<std::uint32_t> cyl_;
};

} // namespace disk
} // namespace idp

#endif // IDP_DISK_CYL_INDEX_HH
