/**
 * @file
 * Drive specifications and the DASH intra-disk-parallelism taxonomy.
 *
 * The paper expresses a parallel-disk design point as the 4-tuple
 * Dk Al Sm Hn — parallelism in Disk stacks, Arm assemblies, Surfaces,
 * and Heads per arm. A conventional drive is D1 A1 S1 H1; the paper's
 * evaluated HC-SD-SA(n) design is D1 An S1 H1 with two service
 * constraints retained from conventional drives: at most one arm
 * assembly in motion at a time and at most one head transferring over
 * the channel. The technical-report extensions relax those two limits
 * (multi-motion and multi-channel), which DriveSpec exposes as
 * maxConcurrentSeeks / maxConcurrentTransfers.
 */

#ifndef IDP_DISK_DRIVE_CONFIG_HH
#define IDP_DISK_DRIVE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/disk_cache.hh"
#include "geom/geometry.hh"
#include "mech/seek_model.hh"
#include "power/power_model.hh"
#include "sched/scheduler.hh"
#include "sim/types.hh"

namespace idp {
namespace disk {

/** A point in the DASH taxonomy: Dk Al Sm Hn. */
struct DashConfig
{
    std::uint32_t diskStacks = 1;    ///< D: spindle/platter stacks
    std::uint32_t armAssemblies = 1; ///< A: independent actuators
    std::uint32_t surfaces = 1;      ///< S: surfaces accessed at once
    std::uint32_t headsPerArm = 1;   ///< H: heads per arm per surface

    /** Render as e.g. "D1A4S1H1". */
    std::string str() const;

    /** Maximum independent data paths this configuration offers. */
    std::uint32_t dataPaths() const;

    /** True for a conventional D1A1S1H1 drive. */
    bool conventional() const;
};

/** Complete specification of one disk drive model. */
struct DriveSpec
{
    std::string name = "drive";
    DashConfig dash;

    geom::GeometryParams geometry;
    mech::SeekParams seek; ///< seek.cylinders is filled when built
    std::uint32_t rpm = 7200;
    cache::CacheParams cache;
    power::PowerParams power; ///< actuators synced with dash on build

    /** Arm assemblies allowed to be in motion simultaneously. */
    std::uint32_t maxConcurrentSeeks = 1;
    /** Heads allowed to stream over the channel simultaneously. */
    std::uint32_t maxConcurrentTransfers = 1;

    /** Scheduling policy and pending-window bound. */
    sched::SchedulerParams sched;
    std::uint32_t schedWindow = 48;
    /**
     * Dispatch through the incrementally maintained cylinder index
     * with admissible lower-bound pruning (selects the byte-identical
     * pair the exhaustive scan would, in O(priced) oracle calls
     * instead of O(window x arms)). The IDP_SCHED_PRUNE=0 environment
     * escape hatch forces the exhaustive path regardless.
     */
    bool schedPrune = true;

    /**
     * Explicit chassis azimuths (revolutions) for each arm assembly;
     * empty = evenly spaced (arm k at k/n). Used by the placement
     * ablation: clustering all arms at one azimuth removes the
     * rotational-latency benefit while keeping the seek benefit.
     */
    std::vector<double> armAzimuths;

    /** Head/track switch and per-request controller overheads. */
    double headSwitchMs = 0.4;
    double controllerOverheadMs = 0.15;
    /** Interface rate for cache-hit service, MB/s. */
    double busMBps = 300.0;

    /**
     * Limit-study knobs (Figure 4): multiply every computed seek /
     * rotational-latency period by these factors. 1.0 = physical.
     */
    double seekScale = 1.0;
    double rotScale = 1.0;

    /**
     * Zero-latency ("read on arrival") access: when a single-track
     * request's run is already passing under the head, start
     * transferring immediately and fill the buffer out of order,
     * wrapping once around the track. Pays off for track-sized
     * requests (a full-track read never waits on rotation); a no-op
     * for small random requests. Off by default.
     */
    bool zeroLatencyAccess = false;

    /**
     * Coalesce queued requests that are exactly contiguous with the
     * one being dispatched (same direction, lba adjacency) into a
     * single media access; every coalesced request completes when the
     * combined transfer ends. Captures back-to-back sequential
     * streams that arrive as separate commands. Off by default.
     */
    bool coalesce = false;
    /** Maximum requests folded into one access (incl. the head). */
    std::uint32_t coalesceLimit = 8;

    /**
     * Media fault injection: probability that one media access fails
     * its transfer and must retry after a full revolution (ECC
     * re-read). After maxRetries consecutive failures the access is
     * reported to the host as a hard error (ServiceInfo::failed).
     */
    double mediaRetryRate = 0.0;
    std::uint32_t maxRetries = 3;
    /** Seed for the drive's internal fault-injection stream. */
    std::uint64_t faultSeed = 0x51D0;

    /**
     * Conventional power-management knob (the DRPM/MAID family the
     * paper's Section 5 contrasts against): spin the spindle down
     * after this much idle time (0 = never). A request arriving at a
     * spun-down drive waits out a full spin-up before any service —
     * the latency cliff that makes such knobs unattractive for the
     * paper's always-busy server workloads.
     */
    double spinDownAfterMs = 0.0;
    double spinUpMs = 6000.0;
    /**
     * Duration of the spin-down transition itself (0 = the historical
     * instantaneous stop). While the transition is in flight the drive
     * serves nothing; a request arriving mid-transition waits out the
     * remaining transition AND a full spin-up — it is never priced at
     * the old speed or served half-stopped.
     */
    double spinDownMs = 0.0;

    /**
     * Ramp duration of a runtime RPM change (DiskDrive::requestRpm /
     * the energy governor). The drive first drains its in-flight
     * requests (new dispatches are gated), then serves nothing for
     * this long while the spindle settles at the new speed. The ramp
     * is billed at the higher of the two speeds (deceleration still
     * dissipates; acceleration draws more).
     */
    double rpmShiftMs = 400.0;

    /** Sync dependent fields (power.actuators, power.rpm, ...). */
    void normalize();
};

/** The paper's HC-SD baseline: Seagate Barracuda ES-like, 750 GB. */
DriveSpec barracudaEs750();

/**
 * A 10k/7.2k RPM enterprise drive of the given capacity, for modeling
 * the original MD array members (Table 2 configurations).
 */
DriveSpec enterpriseDrive(double capacity_gb, std::uint32_t rpm,
                          std::uint32_t platters);

/**
 * Derive the HC-SD-SA(n) intra-disk parallel drive from @p base:
 * n arm assemblies spaced evenly around the spindle, single motion,
 * single channel, SPTF scheduling.
 */
DriveSpec makeIntraDiskParallel(DriveSpec base, std::uint32_t actuators);

/** Derive a reduced-RPM variant (Figures 6 and 7). */
DriveSpec withRpm(DriveSpec base, std::uint32_t rpm);

/** Chassis azimuth (revolutions) of arm @p k of @p n, evenly spaced. */
double armAzimuth(std::uint32_t k, std::uint32_t n);

} // namespace disk
} // namespace idp

#endif // IDP_DISK_DRIVE_CONFIG_HH
