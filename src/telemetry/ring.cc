#include "telemetry/ring.hh"

#include "sim/logging.hh"

namespace idp {
namespace telemetry {

SpanRing::SpanRing(std::size_t capacity)
{
    sim::simAssert(capacity >= 1, "SpanRing: capacity must be >= 1");
    buf_.resize(capacity);
}

std::vector<Span>
SpanRing::snapshot() const
{
    std::vector<Span> out;
    out.reserve(size_);
    if (size_ < buf_.size()) {
        out.insert(out.end(), buf_.begin(), buf_.begin() + size_);
        return out;
    }
    // Full ring: oldest entry is at head_ (the next overwrite target).
    out.insert(out.end(), buf_.begin() + head_, buf_.end());
    out.insert(out.end(), buf_.begin(), buf_.begin() + head_);
    return out;
}

void
SpanRing::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

} // namespace telemetry
} // namespace idp
