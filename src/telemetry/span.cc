#include "telemetry/span.hh"

namespace idp {
namespace telemetry {

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::HostQueue:
        return "host_queue";
      case SpanKind::CacheLookup:
        return "cache_lookup";
      case SpanKind::CacheHit:
        return "cache_hit";
      case SpanKind::ArmSelect:
        return "arm_select";
      case SpanKind::Seek:
        return "seek";
      case SpanKind::RotWait:
        return "rot_wait";
      case SpanKind::ChannelWait:
        return "channel_wait";
      case SpanKind::Transfer:
        return "transfer";
      case SpanKind::Bus:
        return "bus";
      case SpanKind::RaidSplit:
        return "raid_split";
      case SpanKind::RaidJoin:
        return "raid_join";
      case SpanKind::SpinUp:
        return "spin_up";
    }
    return "unknown";
}

} // namespace telemetry
} // namespace idp
