/**
 * @file
 * Named metrics registry: counters, gauges, and histograms.
 *
 * Modules register metrics by name at construction (handles are
 * stable for the registry's lifetime) and update them on the hot path
 * with a plain increment. One Registry belongs to one simulation run;
 * core::runTrace installs it for the duration of the run via
 * RegistryScope and snapshots it into RunResult afterwards, so sweep
 * points tracing on different threads never share a registry and the
 * snapshot order (sorted by name) is deterministic.
 *
 * Access from module code goes through the hooks in
 * telemetry/telemetry.hh, which compile to nothing when the
 * subsystem is disabled at build time (IDP_TELEMETRY=0).
 */

#ifndef IDP_TELEMETRY_REGISTRY_HH
#define IDP_TELEMETRY_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.hh"

namespace idp {
namespace telemetry {

/** Monotonically increasing event count. Atomic (relaxed) so PDES
 *  drive workers bumping shared module counters stay exact; the cost
 *  on the serial path is one uncontended lock-free RMW. */
struct Counter
{
    std::atomic<std::uint64_t> value{0};

    void inc(std::uint64_t by = 1)
    {
        value.fetch_add(by, std::memory_order_relaxed);
    }

    std::uint64_t load() const
    {
        return value.load(std::memory_order_relaxed);
    }
};

/** Point-in-time measurement. */
struct Gauge
{
    double value = 0.0;

    void set(double v) { value = v; }
};

/** One flattened metric row of a snapshot. */
struct MetricSample
{
    std::string name;
    double value = 0.0;
};

class Registry
{
  public:
    Registry() = default;

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Find-or-create; the returned reference stays valid. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /**
     * Find-or-create a histogram with the given bucket upper edges;
     * the edges of an existing histogram are left untouched.
     */
    stats::Histogram &histogram(const std::string &name,
                                const std::vector<double> &upper_edges);

    /** Convenience: gauge(name).set(v). */
    void setGauge(const std::string &name, double v);

    std::size_t metricCount() const;

    /**
     * Flatten every metric into (name, value) rows sorted by name.
     * Histograms expand to <name>.count / <name>.mean / <name>.max.
     */
    std::vector<MetricSample> snapshot() const;

    /**
     * Delta snapshot for long-lived serving runs: counters report the
     * increase since the previous snapshotDelta() call (the first call
     * reports the cumulative value), histograms report the interval's
     * .count and .mean (derived from count/sum baselines; .max stays
     * cumulative — a maximum cannot be rewound without resetting the
     * histogram under its handles), and gauges stay point-in-time.
     * Rows are sorted by name, like snapshot(). The baselines advance
     * only here, so interleaved cumulative snapshot() calls do not
     * perturb the delta stream.
     */
    std::vector<MetricSample> snapshotDelta();

    /** Write the snapshot as a two-column CSV ("metric,value"). */
    void writeCsv(std::ostream &os) const;

    /** The registry installed on this thread (null when none). */
    static Registry *current();

  private:
    friend class RegistryScope;

    // std::map keeps iteration deterministic and node addresses
    // stable, so handles handed out by counter()/gauge() survive
    // later registrations.
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, stats::Histogram> histograms_;

    /** snapshotDelta baselines: last-reported counter values and
     *  histogram (count, sum) pairs, keyed like the metric maps. */
    std::map<std::string, std::uint64_t> counterBase_;
    std::map<std::string, std::pair<std::uint64_t, double>> histBase_;
};

/** Installs a Registry as this thread's current one (RAII). */
class RegistryScope
{
  public:
    explicit RegistryScope(Registry *registry);
    ~RegistryScope();

    RegistryScope(const RegistryScope &) = delete;
    RegistryScope &operator=(const RegistryScope &) = delete;

  private:
    Registry *prev_;
};

/** Write any snapshot as CSV (used by RunResult exports). */
void writeMetricsCsv(std::ostream &os,
                     const std::vector<MetricSample> &metrics);

} // namespace telemetry
} // namespace idp

#endif // IDP_TELEMETRY_REGISTRY_HH
