/**
 * @file
 * Bounded single-writer span ring buffer.
 *
 * Each traced run appends spans to exactly one ring, owned by its
 * Tracer and touched only by the thread executing that run — the
 * per-thread arrangement the sweep engine relies on. The record path
 * is therefore lock-free by construction: an index increment and a
 * 32-byte store, no atomics, no allocation after construction.
 *
 * When full, the ring overwrites its oldest entries (keeping the most
 * recent window, like a flight recorder) and counts the overwrites so
 * exports can report truncation honestly. snapshot() returns spans in
 * insertion order; callers must only snapshot after the writing
 * thread is done (the SweepRunner's wait() provides that barrier).
 */

#ifndef IDP_TELEMETRY_RING_HH
#define IDP_TELEMETRY_RING_HH

#include <cstdint>
#include <vector>

#include "telemetry/span.hh"

namespace idp {
namespace telemetry {

class SpanRing
{
  public:
    /** @param capacity maximum retained spans (>= 1). */
    explicit SpanRing(std::size_t capacity);

    /** Append one span, overwriting the oldest when full. */
    void
    push(const Span &span)
    {
        buf_[head_] = span;
        if (++head_ == buf_.size())
            head_ = 0;
        if (size_ < buf_.size())
            ++size_;
        else
            ++dropped_;
    }

    /** Retained span count. */
    std::size_t size() const { return size_; }

    /** Maximum retained spans. */
    std::size_t capacity() const { return buf_.size(); }

    /** Spans overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Retained spans, oldest first. */
    std::vector<Span> snapshot() const;

    /** Forget everything recorded so far (capacity retained). */
    void clear();

  private:
    std::vector<Span> buf_;
    std::size_t head_ = 0; ///< next write slot
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace telemetry
} // namespace idp

#endif // IDP_TELEMETRY_RING_HH
