#include "telemetry/registry.hh"

#include <algorithm>
#include <ostream>

namespace idp {
namespace telemetry {

namespace {

thread_local Registry *t_current = nullptr;

} // namespace

Counter &
Registry::counter(const std::string &name)
{
    return counters_[name];
}

Gauge &
Registry::gauge(const std::string &name)
{
    return gauges_[name];
}

stats::Histogram &
Registry::histogram(const std::string &name,
                    const std::vector<double> &upper_edges)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(name, stats::Histogram(upper_edges))
                 .first;
    return it->second;
}

void
Registry::setGauge(const std::string &name, double v)
{
    gauge(name).set(v);
}

std::size_t
Registry::metricCount() const
{
    return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<MetricSample>
Registry::snapshot() const
{
    std::vector<MetricSample> out;
    out.reserve(counters_.size() + gauges_.size() +
                histograms_.size() * 3);
    for (const auto &[name, c] : counters_)
        out.push_back({name, static_cast<double>(c.value)});
    for (const auto &[name, g] : gauges_)
        out.push_back({name, g.value});
    for (const auto &[name, h] : histograms_) {
        out.push_back(
            {name + ".count", static_cast<double>(h.total())});
        out.push_back({name + ".mean", h.mean()});
        out.push_back({name + ".max", h.maxSeen()});
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

std::vector<MetricSample>
Registry::snapshotDelta()
{
    std::vector<MetricSample> out;
    out.reserve(counters_.size() + gauges_.size() +
                histograms_.size() * 3);
    for (const auto &[name, c] : counters_) {
        const std::uint64_t now = c.load();
        std::uint64_t &base = counterBase_[name];
        out.push_back({name, static_cast<double>(now - base)});
        base = now;
    }
    for (const auto &[name, g] : gauges_)
        out.push_back({name, g.value});
    for (const auto &[name, h] : histograms_) {
        auto &[base_count, base_sum] = histBase_[name];
        const std::uint64_t dcount = h.total() - base_count;
        const double dsum = h.sum() - base_sum;
        out.push_back(
            {name + ".count", static_cast<double>(dcount)});
        out.push_back({name + ".mean",
                       dcount ? dsum / static_cast<double>(dcount)
                              : 0.0});
        out.push_back({name + ".max", h.maxSeen()});
        base_count = h.total();
        base_sum = h.sum();
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

void
Registry::writeCsv(std::ostream &os) const
{
    writeMetricsCsv(os, snapshot());
}

Registry *
Registry::current()
{
    return t_current;
}

RegistryScope::RegistryScope(Registry *registry) : prev_(t_current)
{
    t_current = registry;
}

RegistryScope::~RegistryScope()
{
    t_current = prev_;
}

void
writeMetricsCsv(std::ostream &os,
                const std::vector<MetricSample> &metrics)
{
    os << "metric,value\n";
    for (const auto &m : metrics)
        os << m.name << ',' << m.value << '\n';
}

} // namespace telemetry
} // namespace idp
