#include "telemetry/tracer.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace idp {
namespace telemetry {

namespace {

thread_local Tracer *t_current = nullptr;

std::uint64_t
envUint(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (!end || *end != '\0' || v == 0) {
        sim::warnOnce(std::string(name) +
                      ": expected a positive integer, got \"" + env +
                      "\"; using default");
        return fallback;
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace

TraceOptions
TraceOptions::fromEnv()
{
    TraceOptions opts;
    if (const char *env = std::getenv("IDP_TRACE"))
        opts.enabled = *env && *env != '0';
    opts.sampleEvery = envUint("IDP_TRACE_SAMPLE", opts.sampleEvery);
    opts.ringCapacity = static_cast<std::size_t>(
        envUint("IDP_TRACE_BUF", opts.ringCapacity));
    return opts;
}

double
TraceData::meanMs(SpanKind kind) const
{
    const PhaseAccum &accum = phase(kind);
    return accum.count
        ? sim::ticksToMs(accum.ticks) /
            static_cast<double>(accum.count)
        : 0.0;
}

double
TraceData::totalMs(SpanKind kind) const
{
    return sim::ticksToMs(phase(kind).ticks);
}

Tracer::Tracer(const TraceOptions &opts)
    : ring_(opts.ringCapacity),
      sampleEvery_(opts.sampleEvery ? opts.sampleEvery : 1)
{
}

TraceData
Tracer::finish() const
{
    TraceData data;
    data.spans = ring_.snapshot();
    data.dropped = ring_.dropped();
    data.phases = phases_;
    return data;
}

Tracer *
Tracer::current()
{
    return t_current;
}

TraceScope::TraceScope(Tracer *tracer) : prev_(t_current)
{
    t_current = tracer;
}

TraceScope::~TraceScope()
{
    t_current = prev_;
}

} // namespace telemetry
} // namespace idp
