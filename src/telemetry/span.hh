/**
 * @file
 * Span taxonomy for per-request phase tracing.
 *
 * A span is one timed phase of one request's life: where the time of
 * Figure 4's bottleneck question actually went. Spans are emitted by
 * instrumentation hooks in the disk, scheduler, cache, bus and array
 * layers, carry the simulated begin/end ticks, and are cheap enough
 * (32 bytes, no allocation) to record per media access.
 *
 * Identifier conventions: disk-level spans carry the *array join id*
 * the drive saw (StorageArray rewrites sub-request ids); array-level
 * spans (RaidSplit/RaidJoin) carry the original logical request id;
 * drive-internal destage traffic uses id 0.
 */

#ifndef IDP_TELEMETRY_SPAN_HH
#define IDP_TELEMETRY_SPAN_HH

#include <cstdint>

#include "sim/types.hh"

namespace idp {
namespace telemetry {

/** Phase of a request's life that a span covers. */
enum class SpanKind : std::uint8_t
{
    HostQueue,   ///< arrival at the drive -> dispatch to an arm
    CacheLookup, ///< on-board cache probe (instant; arm = hit)
    CacheHit,    ///< cache-hit service over the drive interface
    ArmSelect,   ///< scheduler decision (instant; arm = chosen arm)
    Seek,        ///< arm in motion
    RotWait,     ///< waiting for the sector to rotate under a head
    ChannelWait, ///< blocked on the drive's transfer channel budget
    Transfer,    ///< media transfer (incl. head/track switches)
    Bus,         ///< host-interconnect occupancy (incl. channel queue)
    RaidSplit,   ///< array fan-out of a logical request (instant)
    RaidJoin,    ///< logical arrival -> last sub-request completion
    SpinUp,      ///< power-management spindle restart
};

/** Number of distinct SpanKind values. */
constexpr std::size_t kSpanKindCount = 12;

/** Stable lower-case name ("seek", "rot_wait", ...). */
const char *spanKindName(SpanKind kind);

/**
 * True for the mechanical service components whose sum is the media
 * service time (the quantities Figure 4 scales).
 */
constexpr bool
isServiceComponent(SpanKind kind)
{
    return kind == SpanKind::Seek || kind == SpanKind::RotWait ||
        kind == SpanKind::ChannelWait || kind == SpanKind::Transfer;
}

/** One recorded phase of one request. */
struct Span
{
    std::uint64_t id = 0;   ///< request id (see file comment)
    sim::Tick begin = 0;
    sim::Tick end = 0;
    SpanKind kind = SpanKind::HostQueue;
    std::uint16_t arm = 0;  ///< arm index (or kind-specific detail)
    std::uint32_t dev = 0;  ///< physical disk index within the array

    sim::Tick ticks() const { return end - begin; }
};

} // namespace telemetry
} // namespace idp

#endif // IDP_TELEMETRY_SPAN_HH
