/**
 * @file
 * Chrome-trace-event JSON export (Perfetto / chrome://tracing).
 *
 * Each run becomes one "process" in the trace viewer; inside it, a
 * host/array track, one queue track per disk, and one track per
 * (disk, arm) pair carry the spans, so the viewer shows exactly the
 * paper's decomposition: queueing above, seek / rotational wait /
 * transfer per arm below. Timestamps are microseconds of simulated
 * time. The output is the JSON object form
 * {"traceEvents": [...], ...}, which both Perfetto and
 * chrome://tracing load directly.
 */

#ifndef IDP_TELEMETRY_TRACE_EXPORT_HH
#define IDP_TELEMETRY_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/tracer.hh"

namespace idp {
namespace telemetry {

/** One run's worth of spans, shown as one process in the viewer. */
struct TraceBatch
{
    std::string name;        ///< run/system name
    std::vector<Span> spans; ///< oldest first
    std::uint64_t dropped = 0;
};

/** Write all batches as one Chrome trace-event JSON document. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceBatch> &batches);

/** As above, to @p path. Returns false (and warns) on I/O failure. */
bool writeChromeTraceFile(const std::string &path,
                          const std::vector<TraceBatch> &batches);

} // namespace telemetry
} // namespace idp

#endif // IDP_TELEMETRY_TRACE_EXPORT_HH
