#include "telemetry/trace_export.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "sim/logging.hh"

namespace idp {
namespace telemetry {

namespace {

/** Arm indices folded into one track beyond this many arms. */
constexpr std::uint32_t kMaxArmTracks = 16;
/** Track ids reserved per disk (queue track + arm tracks). */
constexpr std::uint32_t kTracksPerDisk = kMaxArmTracks + 2;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

std::uint32_t
tidFor(const Span &span)
{
    switch (span.kind) {
      case SpanKind::RaidSplit:
      case SpanKind::RaidJoin:
      case SpanKind::Bus:
        return 0;
      case SpanKind::Seek:
      case SpanKind::RotWait:
      case SpanKind::ChannelWait:
      case SpanKind::Transfer:
        return 2 + span.dev * kTracksPerDisk +
            std::min<std::uint32_t>(span.arm, kMaxArmTracks - 1);
      default:
        return 1 + span.dev * kTracksPerDisk;
    }
}

std::string
tidName(std::uint32_t tid)
{
    if (tid == 0)
        return "host/array";
    const std::uint32_t disk = (tid - 1) / kTracksPerDisk;
    const std::uint32_t slot = (tid - 1) % kTracksPerDisk;
    if (slot == 0)
        return "disk" + std::to_string(disk) + " queue";
    return "disk" + std::to_string(disk) + " arm" +
        std::to_string(slot - 1);
}

void
writeTs(std::ostream &os, sim::Tick ticks)
{
    // Ticks are integer nanoseconds; emit exact microseconds.
    os << ticks / 1000 << '.' << static_cast<char>('0' + ticks % 1000 / 100)
       << static_cast<char>('0' + ticks % 100 / 10)
       << static_cast<char>('0' + ticks % 10);
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceBatch> &batches)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        os << "\n";
        first = false;
    };

    for (std::size_t b = 0; b < batches.size(); ++b) {
        const TraceBatch &batch = batches[b];
        const std::uint32_t pid = static_cast<std::uint32_t>(b + 1);

        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":\""
           << jsonEscape(batch.name);
        if (batch.dropped)
            os << " (" << batch.dropped << " spans dropped)";
        os << "\"}}";

        std::map<std::uint32_t, bool> tids;
        for (const Span &span : batch.spans)
            tids[tidFor(span)] = true;
        for (const auto &[tid, unused] : tids) {
            (void)unused;
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":"
               << tid
               << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
               << tidName(tid) << "\"}}";
        }

        for (const Span &span : batch.spans) {
            sep();
            os << "{\"pid\":" << pid << ",\"tid\":" << tidFor(span)
               << ",\"name\":\"" << spanKindName(span.kind)
               << "\",\"ts\":";
            writeTs(os, span.begin);
            if (span.begin == span.end) {
                os << ",\"ph\":\"i\",\"s\":\"t\"";
            } else {
                os << ",\"ph\":\"X\",\"dur\":";
                writeTs(os, span.end - span.begin);
            }
            os << ",\"args\":{\"req\":" << span.id << ",\"disk\":"
               << span.dev << ",\"arm\":" << span.arm << "}}";
        }
    }
    os << "\n]}\n";
}

bool
writeChromeTraceFile(const std::string &path,
                     const std::vector<TraceBatch> &batches)
{
    std::ofstream os(path);
    if (!os) {
        sim::warn("trace export: cannot open " + path);
        return false;
    }
    writeChromeTrace(os, batches);
    os.flush();
    if (!os) {
        sim::warn("trace export: write to " + path + " failed");
        return false;
    }
    return true;
}

} // namespace telemetry
} // namespace idp
