/**
 * @file
 * Instrumentation hooks — the only telemetry header module code
 * should include.
 *
 * Compile-time guard: building with IDP_TELEMETRY=0 (cmake
 * -DIDP_TELEMETRY=OFF) turns activeTracer()/activeRegistry() into
 * constexpr nullptr, so every emitSpan()/bump() call below folds to
 * nothing — tracing is zero-cost, not merely cheap. With the guard on
 * (the default) the cost of a disabled run is one thread-local load
 * and branch per hook, bounded by bench/micro_simcore.
 *
 * Runtime control is per run: core::runTrace installs a Tracer and a
 * Registry for the duration of a run when tracing is requested
 * (IDP_TRACE=1 or a programmatic TraceOptions), and the hooks see
 * them through the thread-local currents.
 */

#ifndef IDP_TELEMETRY_TELEMETRY_HH
#define IDP_TELEMETRY_TELEMETRY_HH

#include "telemetry/registry.hh"
#include "telemetry/span.hh"
#include "telemetry/tracer.hh"

#ifndef IDP_TELEMETRY
#define IDP_TELEMETRY 1
#endif

namespace idp {
namespace telemetry {

#if IDP_TELEMETRY
constexpr bool kCompiledIn = true;

inline Tracer *activeTracer() { return Tracer::current(); }
inline Registry *activeRegistry() { return Registry::current(); }
#else
constexpr bool kCompiledIn = false;

constexpr Tracer *activeTracer() { return nullptr; }
constexpr Registry *activeRegistry() { return nullptr; }
#endif

/** Emit one span if a tracer is active. */
inline void
emitSpan(std::uint64_t id, SpanKind kind, sim::Tick begin,
         sim::Tick end, std::uint32_t dev = 0, std::uint16_t arm = 0)
{
    if (Tracer *tracer = activeTracer()) {
        Span span;
        span.id = id;
        span.kind = kind;
        span.begin = begin;
        span.end = end;
        span.dev = dev;
        span.arm = arm;
        tracer->record(span);
    }
}

/** Zero-duration marker span (scheduling decisions, fan-outs). */
inline void
emitInstant(std::uint64_t id, SpanKind kind, sim::Tick at,
            std::uint32_t dev = 0, std::uint16_t arm = 0)
{
    emitSpan(id, kind, at, at, dev, arm);
}

/**
 * Counter handle for module constructors: null when no registry is
 * installed (then bump() is a no-op branch).
 */
inline Counter *
counterHandle(const char *name)
{
    if (Registry *registry = activeRegistry())
        return &registry->counter(name);
    return nullptr;
}

/** Increment through a possibly-null handle. */
inline void
bump(Counter *counter, std::uint64_t by = 1)
{
    if (counter)
        counter->inc(by);
}

} // namespace telemetry
} // namespace idp

#endif // IDP_TELEMETRY_TELEMETRY_HH
