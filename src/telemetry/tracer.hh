/**
 * @file
 * Per-run span tracer.
 *
 * One Tracer belongs to one simulation run. Because a run executes
 * entirely on one thread (the sweep engine gives every point its own
 * worker), the tracer's ring is single-writer and the record path is
 * lock-free. Determinism contract with the PR-1 SweepRunner: sweep
 * point i creates its own tracer, its spans ride back inside the
 * point's RunResult, and SweepRunner already stores result i in slot
 * i — so the merged trace (concatenate per-point spans in index
 * order) is byte-identical at any IDP_THREADS.
 *
 * Two products per run:
 *  - an exact phase-time accumulation over *all* spans (attribution
 *    is never biased by sampling or ring overflow), and
 *  - the span window itself, subject to sampling (IDP_TRACE_SAMPLE
 *    keeps every Nth request) and ring capacity, for export.
 */

#ifndef IDP_TELEMETRY_TRACER_HH
#define IDP_TELEMETRY_TRACER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/ring.hh"
#include "telemetry/span.hh"

namespace idp {
namespace telemetry {

/** Tracing configuration for one run. */
struct TraceOptions
{
    bool enabled = false;
    /** Keep spans of request id i iff i % sampleEvery == 0. */
    std::uint64_t sampleEvery = 1;
    /** Span-ring capacity (spans retained for export). */
    std::size_t ringCapacity = 1u << 18;

    /**
     * Environment-driven configuration: IDP_TRACE=1 enables,
     * IDP_TRACE_SAMPLE=<n> samples, IDP_TRACE_BUF=<spans> sizes the
     * ring. Malformed values warn once and use the defaults.
     */
    static TraceOptions fromEnv();
};

/** Exact per-phase time accumulation. */
struct PhaseAccum
{
    std::uint64_t count = 0;
    sim::Tick ticks = 0;
};

/** Everything one traced run leaves behind (carried by RunResult). */
struct TraceData
{
    /** Retained span window, oldest first. */
    std::vector<Span> spans;
    /** Spans overwritten because the ring filled. */
    std::uint64_t dropped = 0;
    /** Exact totals per SpanKind, over ALL spans (not just retained). */
    std::array<PhaseAccum, kSpanKindCount> phases{};

    const PhaseAccum &
    phase(SpanKind kind) const
    {
        return phases[static_cast<std::size_t>(kind)];
    }

    /** Mean milliseconds per occurrence of @p kind (0 when none). */
    double meanMs(SpanKind kind) const;

    /** Total milliseconds spent in @p kind across the run. */
    double totalMs(SpanKind kind) const;
};

class Tracer
{
  public:
    explicit Tracer(const TraceOptions &opts);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Record one span: accumulate always, retain if sampled. */
    void
    record(const Span &span)
    {
        PhaseAccum &accum =
            phases_[static_cast<std::size_t>(span.kind)];
        ++accum.count;
        accum.ticks += span.ticks();
        if (span.id % sampleEvery_ == 0)
            ring_.push(span);
    }

    /** True when spans of request @p id are retained for export. */
    bool sampled(std::uint64_t id) const
    {
        return id % sampleEvery_ == 0;
    }

    /** Package the run's trace (call after the simulation drains). */
    TraceData finish() const;

    const SpanRing &ring() const { return ring_; }

    /** The tracer installed on this thread (null when none). */
    static Tracer *current();

  private:
    friend class TraceScope;

    SpanRing ring_;
    std::uint64_t sampleEvery_;
    std::array<PhaseAccum, kSpanKindCount> phases_{};
};

/** Installs a Tracer as this thread's current one (RAII). */
class TraceScope
{
  public:
    explicit TraceScope(Tracer *tracer);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    Tracer *prev_;
};

} // namespace telemetry
} // namespace idp

#endif // IDP_TELEMETRY_TRACER_HH
